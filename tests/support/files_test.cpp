// Contract of support::atomicWriteFile: atomic replacement via a unique
// fsynced temp sibling, errno-naming errors, no temp-file litter on either
// success or failure.  The campaign layer's manifests, done markers and
// merged journals all lean on these properties for multi-host safety.
#include "support/files.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "support/diagnostics.hpp"

namespace rtlock::support {
namespace {

namespace fs = std::filesystem;

std::string freshDir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "files_" + tag;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string slurp(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::size_t tempLitter(const std::string& dir) {
  std::size_t count = 0;
  for (const fs::directory_entry& entry : fs::directory_iterator{dir}) {
    if (entry.path().filename().string().find(".tmp.") != std::string::npos) ++count;
  }
  return count;
}

TEST(AtomicWriteFile, CreatesFileWithExactContent) {
  const std::string dir = freshDir("create");
  const std::string path = dir + "/out.txt";
  atomicWriteFile(path, "hello\nworld\n");
  EXPECT_EQ(slurp(path), "hello\nworld\n");
  EXPECT_EQ(tempLitter(dir), 0u);
}

TEST(AtomicWriteFile, ReplacesExistingContentCompletely) {
  const std::string dir = freshDir("replace");
  const std::string path = dir + "/out.txt";
  atomicWriteFile(path, std::string(4096, 'a'));
  atomicWriteFile(path, "short");
  EXPECT_EQ(slurp(path), "short");  // no stale tail from the longer file
  EXPECT_EQ(tempLitter(dir), 0u);
}

TEST(AtomicWriteFile, EmptyContentMakesEmptyFile) {
  const std::string dir = freshDir("empty");
  const std::string path = dir + "/out.txt";
  atomicWriteFile(path, "");
  EXPECT_TRUE(fs::exists(path));
  EXPECT_EQ(fs::file_size(path), 0u);
}

TEST(AtomicWriteFile, MissingDirectoryFailsNamingErrno) {
  const std::string dir = freshDir("nodir");
  const std::string path = dir + "/nope/out.txt";
  try {
    atomicWriteFile(path, "x");
    FAIL() << "expected support::Error";
  } catch (const Error& error) {
    const std::string what = error.what();
    // The EEXIST-vs-other-errno contract: infrastructure failures must name
    // the errno instead of being silently absorbed.
    EXPECT_NE(what.find("errno"), std::string::npos) << what;
    EXPECT_NE(what.find(path + ".tmp."), std::string::npos) << what;
  }
}

TEST(AtomicWriteFile, ConcurrentWritersLeaveOneCompleteVersion) {
  const std::string dir = freshDir("race");
  const std::string path = dir + "/out.txt";
  // Each writer writes a distinct self-consistent payload; whatever rename
  // wins, the surviving file must be one complete payload, never a splice.
  std::vector<std::thread> writers;
  for (int w = 0; w < 8; ++w) {
    writers.emplace_back([&, w] {
      const std::string payload(1024, static_cast<char>('a' + w));
      for (int round = 0; round < 20; ++round) atomicWriteFile(path, payload);
    });
  }
  for (std::thread& writer : writers) writer.join();
  const std::string text = slurp(path);
  ASSERT_EQ(text.size(), 1024u);
  for (const char c : text) EXPECT_EQ(c, text.front());
  EXPECT_EQ(tempLitter(dir), 0u);
}

}  // namespace
}  // namespace rtlock::support
