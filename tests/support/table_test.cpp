#include "support/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "support/diagnostics.hpp"

namespace rtlock::support {
namespace {

TEST(TableTest, TextRenderingAligns) {
  Table table{{"name", "kpa"}};
  table.addRow({"FIR", "74.5"});
  table.addRow({"N_2046", "100.0"});
  std::ostringstream out;
  table.renderText(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("| name "), std::string::npos);
  EXPECT_NE(text.find("FIR"), std::string::npos);
  EXPECT_NE(text.find("N_2046"), std::string::npos);
}

TEST(TableTest, CsvRendering) {
  Table table{{"a", "b"}};
  table.addRow({"1", "2"});
  std::ostringstream out;
  table.renderCsv(out);
  EXPECT_EQ(out.str(), "a,b\n1,2\n");
}

TEST(TableTest, CsvQuotesSpecialCharacters) {
  Table table{{"a"}};
  table.addRow({"hello, world"});
  table.addRow({"say \"hi\""});
  std::ostringstream out;
  table.renderCsv(out);
  EXPECT_EQ(out.str(), "a\n\"hello, world\"\n\"say \"\"hi\"\"\"\n");
}

TEST(TableTest, DoubleRowFormatting) {
  Table table{{"x", "y"}};
  table.addNumericRow({1.234, 5.0}, 1);
  ASSERT_EQ(table.rowCount(), 1u);
  EXPECT_EQ(table.rows()[0][0], "1.2");
  EXPECT_EQ(table.rows()[0][1], "5.0");
}

TEST(TableTest, ArityMismatchThrows) {
  Table table{{"a", "b"}};
  EXPECT_THROW(table.addRow({"only-one"}), ContractViolation);
}

TEST(TableTest, EmptyHeaderThrows) {
  EXPECT_THROW(Table{std::vector<std::string>{}}, ContractViolation);
}

}  // namespace
}  // namespace rtlock::support
