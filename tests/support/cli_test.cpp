#include "support/cli.hpp"

#include <gtest/gtest.h>

#include "support/diagnostics.hpp"

namespace rtlock::support {
namespace {

CliArgs parse(std::vector<const char*> argv, std::vector<std::string> known) {
  argv.insert(argv.begin(), "prog");
  return CliArgs{static_cast<int>(argv.size()), argv.data(), std::move(known)};
}

TEST(CliTest, EqualsSyntax) {
  const auto args = parse({"--seed=42"}, {"seed"});
  EXPECT_EQ(args.getInt("seed", 0), 42);
}

TEST(CliTest, SpaceSyntax) {
  const auto args = parse({"--seed", "7"}, {"seed"});
  EXPECT_EQ(args.getInt("seed", 0), 7);
}

TEST(CliTest, BareFlagIsTrue) {
  const auto args = parse({"--csv"}, {"csv"});
  EXPECT_TRUE(args.getBool("csv", false));
  EXPECT_TRUE(args.has("csv"));
}

TEST(CliTest, FallbacksWhenAbsent) {
  const auto args = parse({}, {"seed", "csv"});
  EXPECT_EQ(args.getInt("seed", 99), 99);
  EXPECT_FALSE(args.getBool("csv", false));
  EXPECT_EQ(args.get("seed", "d"), "d");
  EXPECT_FALSE(args.has("seed"));
}

TEST(CliTest, UnknownFlagThrows) {
  EXPECT_THROW(parse({"--bogus"}, {"seed"}), Error);
}

TEST(CliTest, BadIntegerThrows) {
  const auto args = parse({"--seed=abc"}, {"seed"});
  EXPECT_THROW((void)args.getInt("seed", 0), Error);
}

TEST(CliTest, ParseU64AcceptsPlainDecimal) {
  EXPECT_EQ(parseU64("0"), 0u);
  EXPECT_EQ(parseU64("42"), 42u);
  EXPECT_EQ(parseU64("18446744073709551615"), 18446744073709551615ULL);  // UINT64_MAX
}

TEST(CliTest, ParseU64RejectsEverythingElse) {
  // Trailing junk: the stoull behaviour this replaces parsed "3x" as 3.
  EXPECT_EQ(parseU64("3x"), std::nullopt);
  // Signs: stoull wrapped "-1" to 2^64-1 instead of failing.
  EXPECT_EQ(parseU64("-1"), std::nullopt);
  EXPECT_EQ(parseU64("+1"), std::nullopt);
  EXPECT_EQ(parseU64(""), std::nullopt);
  EXPECT_EQ(parseU64(" 1"), std::nullopt);
  EXPECT_EQ(parseU64("1 "), std::nullopt);
  EXPECT_EQ(parseU64("0x10"), std::nullopt);
  EXPECT_EQ(parseU64("1e3"), std::nullopt);
  EXPECT_EQ(parseU64("18446744073709551616"), std::nullopt);  // UINT64_MAX + 1
}

TEST(CliTest, GetU64StrictParsing) {
  EXPECT_EQ(parse({"--seed=7"}, {"seed"}).getU64("seed", 0), 7u);
  EXPECT_EQ(parse({}, {"seed"}).getU64("seed", 99), 99u);
  EXPECT_THROW((void)parse({"--seed=3x"}, {"seed"}).getU64("seed", 0), Error);
  EXPECT_THROW((void)parse({"--seed=-1"}, {"seed"}).getU64("seed", 0), Error);
}

TEST(CliTest, DoubleParsing) {
  const auto args = parse({"--budget=0.75"}, {"budget"});
  EXPECT_DOUBLE_EQ(args.getDouble("budget", 0.0), 0.75);
}

TEST(CliTest, BooleanSpellings) {
  EXPECT_TRUE(parse({"--x=yes"}, {"x"}).getBool("x", false));
  EXPECT_TRUE(parse({"--x=1"}, {"x"}).getBool("x", false));
  EXPECT_FALSE(parse({"--x=off"}, {"x"}).getBool("x", true));
  EXPECT_THROW((void)parse({"--x=maybe"}, {"x"}).getBool("x", true), Error);
}

TEST(CliTest, PositionalArguments) {
  const auto args = parse({"file1.v", "--seed=1", "file2.v"}, {"seed"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "file1.v");
  EXPECT_EQ(args.positional()[1], "file2.v");
}

}  // namespace
}  // namespace rtlock::support
