#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace rtlock::support {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(RngTest, BelowOneIsAlwaysZero) {
  Rng rng{7};
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(RngTest, BelowZeroThrows) {
  Rng rng{7};
  EXPECT_THROW((void)rng.below(0), ContractViolation);
}

TEST(RngTest, BelowCoversAllValues) {
  Rng rng{11};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, RangeIsInclusive) {
  Rng rng{3};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto value = rng.range(-2, 2);
    EXPECT_GE(value, -2);
    EXPECT_LE(value, 2);
    seen.insert(value);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformWithinUnitInterval) {
  Rng rng{5};
  for (int i = 0; i < 1000; ++i) {
    const double value = rng.uniform();
    EXPECT_GE(value, 0.0);
    EXPECT_LT(value, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng{13};
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, CoinIsRoughlyFair) {
  Rng rng{17};
  int heads = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.coin()) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.5, 0.02);
}

TEST(RngTest, ChanceRespectsProbability) {
  Rng rng{19};
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(RngTest, GaussianMomentsAreStandard) {
  Rng rng{23};
  double sum = 0.0;
  double sumSq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double value = rng.gaussian();
    sum += value;
    sumSq += value * value;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sumSq / n, 1.0, 0.08);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng{29};
  std::vector<int> values{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = values;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng{31};
  std::vector<int> values(50);
  for (int i = 0; i < 50; ++i) values[static_cast<std::size_t>(i)] = i;
  auto shuffled = values;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, values);
}

TEST(RngTest, PickReturnsContainedElement) {
  Rng rng{37};
  const std::vector<int> values{10, 20, 30};
  for (int i = 0; i < 100; ++i) {
    const int picked = rng.pick(values);
    EXPECT_TRUE(picked == 10 || picked == 20 || picked == 30);
  }
}

TEST(RngTest, PickEmptyThrows) {
  Rng rng{37};
  const std::vector<int> empty;
  EXPECT_THROW((void)rng.pick(empty), ContractViolation);
}

TEST(RngTest, SampleIndicesDistinct) {
  Rng rng{41};
  const auto sample = rng.sampleIndices(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  const std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (const auto index : sample) EXPECT_LT(index, 100u);
}

TEST(RngTest, SampleIndicesFullPopulation) {
  Rng rng{43};
  const auto sample = rng.sampleIndices(10, 10);
  const std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, SampleMoreThanPopulationThrows) {
  Rng rng{43};
  EXPECT_THROW((void)rng.sampleIndices(5, 6), ContractViolation);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent{47};
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent() == child()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, SubstreamIsDeterministicPerIndex) {
  const Rng parent{53};
  Rng a = parent.substream(4);
  Rng b = parent.substream(4);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, SubstreamDoesNotAdvanceParent) {
  Rng parent{53};
  Rng witness{53};
  (void)parent.substream(0);
  (void)parent.substream(7);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(parent(), witness());
}

TEST(RngTest, SubstreamsOfDistinctIndicesDiverge) {
  const Rng parent{59};
  Rng a = parent.substream(0);
  Rng b = parent.substream(1);
  Rng c = parent.substream(0x100000000ULL);  // index aliasing guard
  int equalAb = 0;
  int equalAc = 0;
  for (int i = 0; i < 100; ++i) {
    const auto va = a();
    if (va == b()) ++equalAb;
    if (va == c()) ++equalAc;
  }
  EXPECT_LT(equalAb, 3);
  EXPECT_LT(equalAc, 3);
}

TEST(RngTest, SubstreamDependsOnParentState) {
  Rng early{61};
  Rng late{61};
  (void)late();  // advance by one draw
  Rng a = early.substream(2);
  Rng b = late.substream(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace rtlock::support
