// service::runLock / runAttack / runEval determinism and validation.
//
// The serving contract (satellite d of the serve PR): response documents are
// byte-identical for identical requests no matter the cache temperature —
// cold build, warm hit, or eviction-then-rebuild — as long as wall-clock
// values are suppressed (includeWall=false; the lock document never carries
// wall values).
#include "service/api.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <string>

#include "campaign/runner.hpp"
#include "support/diagnostics.hpp"

namespace rtlock::service {
namespace {

constexpr const char* kMixer = R"(
module mixer (input [7:0] a, input [7:0] b, output [7:0] y);
  assign y = (a + b) ^ (a & b);
endmodule
)";

/// A lock request with small deterministic parameters.
[[nodiscard]] LockRequest lockRequest() {
  LockRequest request;
  request.source = kMixer;
  request.seed = 7;
  request.inputLabel = "mixer.v";
  return request;
}

/// An attack request on `locked` with parameters small enough for CI.
[[nodiscard]] AttackRequest attackRequest(const LockResponse& locked) {
  AttackRequest request;
  request.source = locked.lockedVerilog;
  request.key = locked.key;
  request.rounds = 2;
  request.folds = 2;
  request.repeats = 2;
  request.seed = 3;
  request.threads = 1;
  request.includeWall = false;
  return request;
}

TEST(RunLockTest, ColdAndWarmResponsesAreByteIdentical) {
  SessionCache cache;
  const LockResponse cold = runLock(cache, lockRequest());
  const LockResponse warm = runLock(cache, lockRequest());
  EXPECT_FALSE(cold.cacheHit);
  EXPECT_TRUE(warm.cacheHit);
  EXPECT_EQ(cold.designHash, warm.designHash);
  EXPECT_EQ(cold.lockedVerilog, warm.lockedVerilog);
  EXPECT_EQ(lockResponseDocument(cold).dump(), lockResponseDocument(warm).dump());
  ASSERT_EQ(cold.modules.size(), 1u);
  EXPECT_EQ(cold.modules.front().module, "mixer");
  EXPECT_GT(cold.modules.front().bitsUsed, 0);
}

TEST(RunLockTest, EvictionThenRefetchIsByteIdentical) {
  // A 1-byte budget holds one pinned session at most: locking a second
  // design evicts the first, so the third call rebuilds from scratch — and
  // the rebuilt document must not change by a byte.
  SessionCache cache{1};
  const std::string first = lockResponseDocument(runLock(cache, lockRequest())).dump();
  LockRequest other = lockRequest();
  other.source = R"(
module adder (input [7:0] a, input [7:0] b, output [7:0] y);
  assign y = a + b;
endmodule
)";
  (void)runLock(cache, other);  // evicts the mixer session
  const LockResponse rebuilt = runLock(cache, lockRequest());
  EXPECT_FALSE(rebuilt.cacheHit);
  EXPECT_EQ(first, lockResponseDocument(rebuilt).dump());
  EXPECT_GE(cache.stats().evictions, 1u);
}

TEST(RunLockTest, ExpiredDeadlineThrowsCellTimeout) {
  SessionCache cache;
  campaign::CellContext context;
  context.deadlineMs = 1.0;
  context.start = std::chrono::steady_clock::now() - std::chrono::seconds{5};
  EXPECT_THROW((void)runLock(cache, lockRequest(), &context), campaign::CellTimeout);
}

TEST(RunAttackTest, WarmVsColdReportsAreByteIdentical) {
  SessionCache warmCache;
  const LockResponse locked = runLock(warmCache, lockRequest());
  const AttackRequest request = attackRequest(locked);

  const AttackResponse warmA = runAttack(warmCache, request);
  const AttackResponse warmB = runAttack(warmCache, request);  // cache hit
  SessionCache coldCache;
  const AttackResponse cold = runAttack(coldCache, request);  // fresh build

  EXPECT_FALSE(cold.cacheHit);
  EXPECT_TRUE(warmB.cacheHit);
  const std::string label = "mixer.locked.v";
  EXPECT_EQ(attackReportDocument(request, warmA, label).dump(),
            attackReportDocument(request, warmB, label).dump());
  EXPECT_EQ(attackReportDocument(request, warmA, label).dump(),
            attackReportDocument(request, cold, label).dump());
  EXPECT_TRUE(cold.scored);
  ASSERT_EQ(cold.repeats.size(), 2u);
  for (const AttackRepeat& repeat : cold.repeats) {
    EXPECT_GT(repeat.result.keyBits, 0);
  }
  // includeWall=false zeroes wall-clock values in the *document* (the
  // response struct keeps them for callers that want timing): the dumps
  // compared above would differ otherwise.
}

TEST(RunAttackTest, MissingKeyMeansUnscoredWithNote) {
  SessionCache cache;
  const LockResponse locked = runLock(cache, lockRequest());
  AttackRequest request = attackRequest(locked);
  request.key.reset();
  const AttackResponse response = runAttack(cache, request);
  EXPECT_FALSE(response.scored);
  ASSERT_FALSE(response.notes.empty());
  EXPECT_NE(response.notes.front().find("no key file"), std::string::npos);
}

TEST(RunAttackTest, RejectsMalformedParameters) {
  SessionCache cache;
  const LockResponse locked = runLock(cache, lockRequest());
  {
    AttackRequest request = attackRequest(locked);
    request.repeats = 0;
    EXPECT_THROW((void)runAttack(cache, request), BadRequest);
  }
  {
    AttackRequest request = attackRequest(locked);
    request.folds = 1;
    EXPECT_THROW((void)runAttack(cache, request), BadRequest);
  }
  {
    AttackRequest request = attackRequest(locked);
    request.rounds = 0;
    EXPECT_THROW((void)runAttack(cache, request), BadRequest);
  }
}

TEST(RunAttackTest, UnknownModuleIsAnError) {
  SessionCache cache;
  const LockResponse locked = runLock(cache, lockRequest());
  AttackRequest request = attackRequest(locked);
  request.moduleName = "does_not_exist";
  EXPECT_THROW((void)runAttack(cache, request), support::Error);
}

/// An eval request over a 2-cell grid with CI-sized parameters.
[[nodiscard]] EvalRequest evalRequest() {
  EvalRequest request;
  request.source = kMixer;
  request.algorithms = {lock::Algorithm::Era};
  request.seeds = {1, 2};
  request.samples = 1;
  request.rounds = 2;
  request.folds = 2;
  request.campaign.threads = 1;
  request.includeWall = false;
  return request;
}

TEST(RunEvalTest, WarmVsColdReportsAreByteIdentical) {
  SessionCache warmCache;
  const EvalResponse warmA = runEval(warmCache, evalRequest());
  const EvalResponse warmB = runEval(warmCache, evalRequest());
  SessionCache coldCache;
  const EvalResponse cold = runEval(coldCache, evalRequest());

  EXPECT_FALSE(warmA.cacheHit);
  EXPECT_TRUE(warmB.cacheHit);
  EXPECT_FALSE(cold.cacheHit);
  const std::string label = "mixer.v";
  EXPECT_EQ(evalReportDocument(warmA, label).dump(), evalReportDocument(warmB, label).dump());
  EXPECT_EQ(evalReportDocument(warmA, label).dump(), evalReportDocument(cold, label).dump());
  EXPECT_EQ(cold.cells.size(), 2u);
  EXPECT_EQ(cold.campaign.okCells, 2u);
  EXPECT_TRUE(cold.cellErrors.empty());
  EXPECT_FALSE(cold.rows.empty());
}

TEST(RunEvalTest, RejectsEmptyGridAxes) {
  SessionCache cache;
  {
    EvalRequest request = evalRequest();
    request.algorithms.clear();
    EXPECT_THROW((void)runEval(cache, request), BadRequest);
  }
  {
    EvalRequest request = evalRequest();
    request.seeds.clear();
    EXPECT_THROW((void)runEval(cache, request), BadRequest);
  }
  {
    EvalRequest request = evalRequest();
    request.samples = 0;
    EXPECT_THROW((void)runEval(cache, request), BadRequest);
  }
}

TEST(RunEvalTest, ParseFailureSurfacesAsError) {
  SessionCache cache;
  EvalRequest request = evalRequest();
  request.source = "module broken (";
  EXPECT_THROW((void)runEval(cache, request), support::Error);
}

}  // namespace
}  // namespace rtlock::service
