// Server: real TCP round-trips against an ephemeral-port daemon — request
// framing end to end, malformed-input answers, early disconnects, the
// maxRequests self-drain, and requestStop().
#include "service/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <string>
#include <thread>

namespace rtlock::service {
namespace {

constexpr const char* kMixer =
    "module mixer (input [7:0] a, input [7:0] b, output [7:0] y);\\n"
    "  assign y = (a + b) ^ (a & b);\\nendmodule\\n";

/// Connects to 127.0.0.1:port, sends `text`, reads until EOF (the server
/// speaks Connection: close).  Empty `text` models an early disconnect.
[[nodiscard]] std::string httpExchange(int port, const std::string& text) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  timeval timeout{};
  timeout.tv_sec = 20;
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) != 0) {
    ::close(fd);
    return {};
  }
  std::size_t sent = 0;
  while (sent < text.size()) {
    const ssize_t n = ::send(fd, text.data() + sent, text.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string reply;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    reply.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return reply;
}

[[nodiscard]] std::string getRequest(const std::string& target) {
  return "GET " + target + " HTTP/1.1\r\nHost: test\r\n\r\n";
}

[[nodiscard]] std::string postRequest(const std::string& target, const std::string& body) {
  return "POST " + target + " HTTP/1.1\r\nHost: test\r\nContent-Length: " +
         std::to_string(body.size()) + "\r\n\r\n" + body;
}

/// Serves exactly `maxRequests` connections on an ephemeral port, runs
/// `client` against it, and returns run()'s exit code.
template <typename Client>
int withServer(ServeOptions options, Client&& client) {
  options.host = "127.0.0.1";
  options.port = 0;
  Server server{options};
  int exitCode = -1;
  std::thread runner{[&server, &exitCode] { exitCode = server.run(); }};
  client(server);
  runner.join();
  return exitCode;
}

TEST(ServerTest, HealthzOverTcp) {
  ServeOptions options;
  options.threads = 1;
  options.maxRequests = 1;
  const int exitCode = withServer(options, [](Server& server) {
    const std::string reply = httpExchange(server.port(), getRequest("/healthz"));
    EXPECT_EQ(reply.rfind("HTTP/1.1 200 OK\r\n", 0), 0u) << reply;
    EXPECT_NE(reply.find("\"status\": \"ok\""), std::string::npos) << reply;
  });
  EXPECT_EQ(exitCode, 0);  // maxRequests self-drain returns success
}

TEST(ServerTest, MaxRequestsAcceptsExactlyThatMany) {
  ServeOptions options;
  options.threads = 1;
  options.maxRequests = 3;
  Server* observed = nullptr;
  const int exitCode = withServer(options, [&observed](Server& server) {
    observed = &server;
    for (int i = 0; i < 3; ++i) {
      EXPECT_NE(httpExchange(server.port(), getRequest("/healthz")), "");
    }
  });
  EXPECT_EQ(exitCode, 0);
  ASSERT_NE(observed, nullptr);
  EXPECT_EQ(observed->acceptedConnections(), 3u);
  EXPECT_EQ(observed->rejectedConnections(), 0u);
}

TEST(ServerTest, MalformedRequestLineGets400) {
  ServeOptions options;
  options.threads = 1;
  options.maxRequests = 1;
  (void)withServer(options, [](Server& server) {
    const std::string reply = httpExchange(server.port(), "GARBAGE\r\n\r\n");
    EXPECT_EQ(reply.rfind("HTTP/1.1 400 ", 0), 0u) << reply;
  });
}

TEST(ServerTest, OversizedHeadersGet431) {
  ServeOptions options;
  options.threads = 1;
  options.maxRequests = 1;
  (void)withServer(options, [](Server& server) {
    const std::string reply = httpExchange(
        server.port(),
        "GET / HTTP/1.1\r\nX-Pad: " + std::string(20 * 1024, 'a') + "\r\n\r\n");
    EXPECT_EQ(reply.rfind("HTTP/1.1 431 ", 0), 0u) << reply;
  });
}

TEST(ServerTest, EarlyDisconnectDoesNotPoisonTheServer) {
  ServeOptions options;
  options.threads = 1;
  options.maxRequests = 2;
  options.socketTimeoutMs = 500;  // the empty connection times out quickly
  (void)withServer(options, [](Server& server) {
    (void)httpExchange(server.port(), "");  // connect, send nothing, close
    const std::string reply = httpExchange(server.port(), getRequest("/healthz"));
    EXPECT_NE(reply.find("200 OK"), std::string::npos) << reply;
  });
}

TEST(ServerTest, LockEndpointOverTcp) {
  ServeOptions options;
  options.threads = 1;
  options.maxRequests = 2;
  (void)withServer(options, [](Server& server) {
    const std::string body = std::string{"{\"source\": \""} + kMixer + "\", \"seed\": 7}";
    const std::string cold = httpExchange(server.port(), postRequest("/v1/lock", body));
    const std::string warm = httpExchange(server.port(), postRequest("/v1/lock", body));
    EXPECT_NE(cold.find("200 OK"), std::string::npos) << cold;
    EXPECT_NE(cold.find("X-Rtlock-Cache: miss"), std::string::npos);
    EXPECT_NE(warm.find("X-Rtlock-Cache: hit"), std::string::npos);
    // Identical payloads modulo the one cache header.
    const auto bodyOf = [](const std::string& reply) {
      return reply.substr(reply.find("\r\n\r\n"));
    };
    EXPECT_EQ(bodyOf(cold), bodyOf(warm));
  });
}

TEST(ServerTest, RequestStopDrainsAndReturnsZero) {
  ServeOptions options;
  options.threads = 1;
  const int exitCode = withServer(options, [](Server& server) {
    (void)httpExchange(server.port(), getRequest("/healthz"));
    server.requestStop();
  });
  EXPECT_EQ(exitCode, 0);
}

}  // namespace
}  // namespace rtlock::service
