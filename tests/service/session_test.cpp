// DesignSession + SessionCache: content hashing, LRU eviction under a byte
// budget, shared_ptr pinning, in-flight build dedup and failure propagation.
#include "service/session.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "support/diagnostics.hpp"

namespace rtlock::service {
namespace {

constexpr const char* kMixer = R"(
module mixer (input [7:0] a, input [7:0] b, output [7:0] y);
  assign y = (a + b) ^ (a & b);
endmodule
)";

constexpr const char* kAdder = R"(
module adder (input [7:0] a, input [7:0] b, output [7:0] y);
  assign y = a + b;
endmodule
)";

TEST(SessionHashTest, DeterministicAndContentSensitive) {
  const SessionOptions options;
  EXPECT_EQ(SessionCache::contentHash(kMixer, options),
            SessionCache::contentHash(kMixer, options));
  EXPECT_NE(SessionCache::contentHash(kMixer, options),
            SessionCache::contentHash(kAdder, options));
  // The parser options shape the IR, so they are part of the identity.
  SessionOptions renamed;
  renamed.keyPortName = "secret_key";
  EXPECT_NE(SessionCache::contentHash(kMixer, options),
            SessionCache::contentHash(kMixer, renamed));
}

TEST(SessionTest, BuildsArtifactsForEveryModule) {
  const SessionCache::FetchResult fetched = [] {
    SessionCache cache;
    return cache.fetch(kMixer, SessionOptions{});
  }();
  const SessionPtr& session = fetched.session;
  ASSERT_NE(session, nullptr);
  EXPECT_FALSE(fetched.hit);
  ASSERT_EQ(session->moduleCount(), 1u);
  EXPECT_EQ(session->module(0).name(), "mixer");
  EXPECT_NE(session->findModule("mixer"), nullptr);
  EXPECT_EQ(session->findModule("nope"), nullptr);
  // Both compiled backends exist per module, and the size estimate is sane.
  EXPECT_GT(session->artifacts(0).scalar.instructionCount(), 0u);
  EXPECT_GT(session->artifacts(0).sliced.instructionCount(), 0u);
  EXPECT_GE(session->approxBytes(), 1024u);
  // The session outlives its cache (the fixture's cache is already gone).
  rtl::Design clone = session->cloneDesign();
  ASSERT_EQ(clone.moduleCount(), 1u);
  EXPECT_EQ(clone.module(0).name(), "mixer");
}

TEST(SessionCacheTest, SecondFetchIsAHit) {
  SessionCache cache;
  const auto first = cache.fetch(kMixer, SessionOptions{});
  const auto second = cache.fetch(kMixer, SessionOptions{});
  EXPECT_FALSE(first.hit);
  EXPECT_TRUE(second.hit);
  EXPECT_EQ(first.session.get(), second.session.get());  // same artifact
  const SessionCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(SessionCacheTest, DifferentOptionsAreDifferentEntries) {
  SessionCache cache;
  SessionOptions renamed;
  renamed.keyPortName = "secret_key";
  const auto a = cache.fetch(kMixer, SessionOptions{});
  const auto b = cache.fetch(kMixer, renamed);
  EXPECT_FALSE(b.hit);
  EXPECT_NE(a.session.get(), b.session.get());
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(SessionCacheTest, TinyBudgetEvictsLeastRecentlyUsed) {
  // A 1-byte budget can hold no completed session: every insert evicts.
  SessionCache cache{1};
  const auto a = cache.fetch(kMixer, SessionOptions{});
  const auto b = cache.fetch(kAdder, SessionOptions{});
  EXPECT_FALSE(a.hit);
  EXPECT_FALSE(b.hit);
  const auto aAgain = cache.fetch(kMixer, SessionOptions{});
  EXPECT_FALSE(aAgain.hit);  // was evicted, rebuilt
  const SessionCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_GE(stats.evictions, 2u);
  // Pinning: the evicted sessions stay alive and equivalent for holders.
  EXPECT_EQ(a.session->contentHash(), aAgain.session->contentHash());
  EXPECT_EQ(a.session->module(0).name(), aAgain.session->module(0).name());
}

TEST(SessionCacheTest, ClearDropsEntriesAndCountsEvictions) {
  SessionCache cache;
  (void)cache.fetch(kMixer, SessionOptions{});
  (void)cache.fetch(kAdder, SessionOptions{});
  cache.clear();
  const SessionCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(stats.evictions, 2u);
  // The cache keeps working after clear().
  EXPECT_FALSE(cache.fetch(kMixer, SessionOptions{}).hit);
}

TEST(SessionCacheTest, ParseFailureCachesNothing) {
  SessionCache cache;
  EXPECT_THROW((void)cache.fetch("module broken (", SessionOptions{}), support::Error);
  // The failure was not cached: the next fetch tries (and fails) again.
  EXPECT_THROW((void)cache.fetch("module broken (", SessionOptions{}), support::Error);
  const SessionCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.misses, 2u);
  // A good design still builds.
  EXPECT_FALSE(cache.fetch(kMixer, SessionOptions{}).hit);
}

TEST(SessionCacheTest, ConcurrentFetchesShareOneBuild) {
  SessionCache cache;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<SessionPtr> sessions(kThreads);
  std::atomic<int> hits{0};
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&cache, &sessions, &hits, i] {
      const auto fetched = cache.fetch(kMixer, SessionOptions{});
      sessions[static_cast<std::size_t>(i)] = fetched.session;
      if (fetched.hit) ++hits;
    });
  }
  for (std::thread& thread : threads) thread.join();
  // Exactly one build happened; everyone got the same pinned artifact.
  for (const SessionPtr& session : sessions) {
    ASSERT_NE(session, nullptr);
    EXPECT_EQ(session.get(), sessions.front().get());
  }
  const SessionCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, static_cast<std::uint64_t>(hits.load()));
  EXPECT_EQ(stats.hits + stats.misses, static_cast<std::uint64_t>(kThreads));
  EXPECT_EQ(stats.entries, 1u);
}

TEST(SessionCacheTest, ConcurrentMixedDesignsStayConsistent) {
  SessionCache cache{1};  // eviction churn on every insert
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&cache, &failures, i] {
      for (int round = 0; round < 4; ++round) {
        const char* source = ((i + round) % 2 == 0) ? kMixer : kAdder;
        const auto fetched = cache.fetch(source, SessionOptions{});
        if (fetched.session == nullptr || fetched.session->moduleCount() != 1) ++failures;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace rtlock::service
