// Dispatcher: the whole `rtlock serve` endpoint surface without sockets —
// routing, JSON validation, error mapping, cache headers, and the
// miss-then-hit byte-identical body contract.
#include "service/dispatch.hpp"

#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "service/api.hpp"
#include "support/json.hpp"

namespace rtlock::service {
namespace {

constexpr const char* kMixer = R"(
module mixer (input [7:0] a, input [7:0] b, output [7:0] y);
  assign y = (a + b) ^ (a & b);
endmodule
)";

[[nodiscard]] HttpRequest makeRequest(std::string method, std::string target,
                                      std::string body = {}) {
  HttpRequest request;
  request.method = std::move(method);
  request.target = std::move(target);
  request.version = "HTTP/1.1";
  request.body = std::move(body);
  return request;
}

[[nodiscard]] std::string headerOf(const HttpResponse& response, const std::string& name) {
  for (const auto& [key, value] : response.extraHeaders) {
    if (key == name) return value;
  }
  return {};
}

class DispatchTest : public ::testing::Test {
 protected:
  SessionCache cache_;
  Dispatcher dispatcher_{cache_};
};

TEST_F(DispatchTest, HealthzReportsBuildIdentity) {
  const HttpResponse response = dispatcher_.handle(makeRequest("GET", "/healthz"));
  ASSERT_EQ(response.status, 200);
  const support::JsonValue document = support::parseJson(response.body);
  EXPECT_EQ(document.find("status")->asString(), "ok");
  EXPECT_FALSE(document.find("version")->asString().empty());
  EXPECT_FALSE(document.find("engine")->asString().empty());
  EXPECT_FALSE(document.find("sim_backends")->asArray().empty());
}

TEST_F(DispatchTest, StatsCountersTrackOutcomes) {
  (void)dispatcher_.handle(makeRequest("GET", "/healthz"));              // ok
  (void)dispatcher_.handle(makeRequest("GET", "/nope"));                 // 404
  (void)dispatcher_.handle(makeRequest("POST", "/v1/lock", "not json")); // 400
  const HttpResponse response = dispatcher_.handle(makeRequest("GET", "/v1/stats"));
  ASSERT_EQ(response.status, 200);
  const support::JsonValue document = support::parseJson(response.body);
  const support::JsonValue* requests = document.find("requests");
  ASSERT_NE(requests, nullptr);
  // The stats request itself is the 4th; it snapshots counters mid-flight,
  // so `total` covers all four but `ok` has not yet counted the response.
  EXPECT_EQ(requests->find("total")->asInt(), 4);
  EXPECT_EQ(requests->find("client_errors")->asInt(), 2);
  EXPECT_EQ(requests->find("server_errors")->asInt(), 0);
  const support::JsonValue* cacheDoc = document.find("cache");
  ASSERT_NE(cacheDoc, nullptr);
  EXPECT_EQ(cacheDoc->find("entries")->asInt(), 0);
  EXPECT_GT(cacheDoc->find("byte_budget")->asInt(), 0);
}

TEST_F(DispatchTest, UnknownEndpointIs404) {
  const HttpResponse response = dispatcher_.handle(makeRequest("GET", "/v2/lock"));
  EXPECT_EQ(response.status, 404);
  EXPECT_NE(response.body.find("no such endpoint"), std::string::npos);
}

TEST_F(DispatchTest, WrongMethodIs405) {
  EXPECT_EQ(dispatcher_.handle(makeRequest("POST", "/healthz")).status, 405);
  EXPECT_EQ(dispatcher_.handle(makeRequest("GET", "/v1/lock")).status, 405);
  EXPECT_EQ(dispatcher_.handle(makeRequest("DELETE", "/v1/lock")).status, 405);
}

TEST_F(DispatchTest, MalformedBodiesAre400) {
  // Syntax error, non-object root, invalid UTF-8, missing source, and a
  // wrongly-typed field: all client errors, all structured JSON answers.
  for (const char* body : {"{not json", "[1,2]", "{\"source\": \"\xFF\xFE\"}", "{}",
                           "{\"source\": 42}",
                           "{\"source\": \"module m; endmodule\", \"seed\": -1}"}) {
    const HttpResponse response = dispatcher_.handle(makeRequest("POST", "/v1/lock", body));
    EXPECT_EQ(response.status, 400) << body;
    const support::JsonValue document = support::parseJson(response.body);
    EXPECT_NE(document.find("error"), nullptr) << body;
  }
}

TEST_F(DispatchTest, UnparsableVerilogIs400) {
  support::JsonValue body;
  body.set("source", "module broken (");
  const HttpResponse response = dispatcher_.handle(makeRequest("POST", "/v1/lock", body.dump()));
  EXPECT_EQ(response.status, 400);
}

TEST_F(DispatchTest, LockMissThenHitBodiesAreByteIdentical) {
  support::JsonValue body;
  body.set("source", kMixer);
  body.set("seed", std::uint64_t{7});
  const HttpResponse cold = dispatcher_.handle(makeRequest("POST", "/v1/lock", body.dump()));
  const HttpResponse warm = dispatcher_.handle(makeRequest("POST", "/v1/lock", body.dump()));
  ASSERT_EQ(cold.status, 200);
  ASSERT_EQ(warm.status, 200);
  EXPECT_EQ(headerOf(cold, "X-Rtlock-Cache"), "miss");
  EXPECT_EQ(headerOf(warm, "X-Rtlock-Cache"), "hit");
  EXPECT_EQ(headerOf(cold, "X-Rtlock-Design-Hash"), headerOf(warm, "X-Rtlock-Design-Hash"));
  // Cache state lives in headers only: the bodies match byte for byte.
  EXPECT_EQ(cold.body, warm.body);
}

TEST_F(DispatchTest, AttackEndpointScoresAgainstSuppliedKey) {
  // Lock through the service API, then attack the result over HTTP JSON.
  LockRequest lockReq;
  lockReq.source = kMixer;
  lockReq.seed = 7;
  const LockResponse locked = runLock(cache_, lockReq);

  support::JsonValue body;
  body.set("source", locked.lockedVerilog);
  body.set("key", keyFileToJson(locked.key));
  body.set("rounds", std::uint64_t{2});
  body.set("folds", std::uint64_t{2});
  body.set("repeats", std::uint64_t{1});
  body.set("no_wall", true);
  const HttpResponse first = dispatcher_.handle(makeRequest("POST", "/v1/attack", body.dump()));
  ASSERT_EQ(first.status, 200) << first.body;
  const HttpResponse second = dispatcher_.handle(makeRequest("POST", "/v1/attack", body.dump()));
  ASSERT_EQ(second.status, 200);
  EXPECT_EQ(headerOf(second, "X-Rtlock-Cache"), "hit");
  EXPECT_EQ(first.body, second.body);
  const support::JsonValue document = support::parseJson(first.body);
  EXPECT_NE(document.find("schema"), nullptr);
}

TEST_F(DispatchTest, EvalEndpointRunsTheGrid) {
  support::JsonValue body;
  body.set("source", kMixer);
  body.set("algos", "era");
  body.set("seeds", "1,2");
  body.set("samples", std::uint64_t{1});
  body.set("rounds", std::uint64_t{2});
  body.set("folds", std::uint64_t{2});
  body.set("no_wall", true);
  const HttpResponse first = dispatcher_.handle(makeRequest("POST", "/v1/eval", body.dump()));
  ASSERT_EQ(first.status, 200) << first.body;
  const HttpResponse second = dispatcher_.handle(makeRequest("POST", "/v1/eval", body.dump()));
  ASSERT_EQ(second.status, 200);
  EXPECT_EQ(headerOf(first, "X-Rtlock-Cache"), "miss");
  EXPECT_EQ(headerOf(second, "X-Rtlock-Cache"), "hit");
  EXPECT_EQ(first.body, second.body);
}

TEST_F(DispatchTest, EvalRejectsEmptyAxes) {
  support::JsonValue body;
  body.set("source", kMixer);
  body.set("seeds", support::JsonValue{support::JsonArray{}});
  const HttpResponse response = dispatcher_.handle(makeRequest("POST", "/v1/eval", body.dump()));
  EXPECT_EQ(response.status, 400);
  EXPECT_NE(response.body.find("seeds"), std::string::npos);
}

}  // namespace
}  // namespace rtlock::service
