// RequestParser robustness corpus: torn chunks, hostile header shapes,
// malformed Content-Length, oversized messages, random byte storms.  The
// parser must reach a definite verdict (Complete or a 4xx/5xx Error state)
// for every input and never crash — this suite runs under ASan in CI.
#include "service/http.hpp"

#include <gtest/gtest.h>

#include <string>

#include "support/rng.hpp"

namespace rtlock::service {
namespace {

/// Feeds the whole text in one chunk and returns the parser.
RequestParser feedAll(const std::string& text, RequestParser::Limits limits = {}) {
  RequestParser parser{limits};
  parser.feed(text);
  return parser;
}

TEST(HttpParserTest, ParsesSimpleGet) {
  RequestParser parser = feedAll("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  ASSERT_EQ(parser.state(), RequestParser::State::Complete);
  EXPECT_EQ(parser.request().method, "GET");
  EXPECT_EQ(parser.request().target, "/healthz");
  EXPECT_EQ(parser.request().version, "HTTP/1.1");
  EXPECT_EQ(parser.request().header("host"), "x");
  EXPECT_TRUE(parser.request().body.empty());
}

TEST(HttpParserTest, HeaderNamesAreCaseInsensitive) {
  RequestParser parser =
      feedAll("POST /v1/lock HTTP/1.1\r\nCoNtEnT-LeNgTh: 2\r\nX-Custom: Value\r\n\r\nhi");
  ASSERT_EQ(parser.state(), RequestParser::State::Complete);
  EXPECT_EQ(parser.request().body, "hi");
  EXPECT_EQ(parser.request().header("x-custom"), "Value");  // value case kept
}

TEST(HttpParserTest, TornDeliveryByteByByte) {
  const std::string text = "POST /v1/attack HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
  RequestParser parser;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const auto state = parser.feed(text.substr(i, 1));
    if (i + 1 < text.size()) {
      ASSERT_EQ(state, RequestParser::State::NeedMore) << "byte " << i;
    }
  }
  ASSERT_EQ(parser.state(), RequestParser::State::Complete);
  EXPECT_EQ(parser.request().body, "hello");
}

TEST(HttpParserTest, BodySplitAcrossChunks) {
  RequestParser parser;
  parser.feed("POST / HTTP/1.1\r\nContent-Length: 11\r\n\r\nhel");
  EXPECT_EQ(parser.state(), RequestParser::State::NeedMore);
  parser.feed("lo wo");
  EXPECT_EQ(parser.state(), RequestParser::State::NeedMore);
  parser.feed("rld");
  ASSERT_EQ(parser.state(), RequestParser::State::Complete);
  EXPECT_EQ(parser.request().body, "hello world");
}

TEST(HttpParserTest, FeedingAfterCompleteIsANoOp) {
  RequestParser parser = feedAll("GET / HTTP/1.1\r\n\r\n");
  ASSERT_EQ(parser.state(), RequestParser::State::Complete);
  EXPECT_EQ(parser.feed("more bytes"), RequestParser::State::Complete);
  EXPECT_EQ(parser.request().target, "/");
}

TEST(HttpParserTest, Http10IsAccepted) {
  EXPECT_EQ(feedAll("GET / HTTP/1.0\r\n\r\n").state(), RequestParser::State::Complete);
}

TEST(HttpParserTest, MalformedRequestLinesAre400) {
  for (const char* text : {
           "GARBAGE\r\n\r\n",                      // no spaces at all
           "GET  / HTTP/1.1\r\n\r\n",              // double space
           "GET / HTTP/2.0\r\n\r\n",               // unsupported version
           "GET / HTTP/1.1 extra\r\n\r\n",         // trailing junk
           "GET nopath HTTP/1.1\r\n\r\n",          // target must start with /
           " GET / HTTP/1.1\r\n\r\n",              // leading space
           "\r\nGET / HTTP/1.1\r\n\r\n",           // empty request line
       }) {
    RequestParser parser = feedAll(text);
    EXPECT_EQ(parser.state(), RequestParser::State::Error) << text;
    EXPECT_EQ(parser.errorStatus(), 400) << text;
  }
}

TEST(HttpParserTest, HostileHeaderShapesAre400) {
  for (const char* text : {
           "GET / HTTP/1.1\r\nNoColonHere\r\n\r\n",
           "GET / HTTP/1.1\r\nBad Name: x\r\n\r\n",    // whitespace in name
           "GET / HTTP/1.1\r\nName : x\r\n\r\n",       // space before colon
           "GET / HTTP/1.1\r\n: empty-name\r\n\r\n",
           "GET / HTTP/1.1\r\nA: 1\r\n\tfolded\r\n\r\n",  // obs-fold
       }) {
    RequestParser parser = feedAll(text);
    EXPECT_EQ(parser.state(), RequestParser::State::Error) << text;
    EXPECT_EQ(parser.errorStatus(), 400) << text;
  }
}

TEST(HttpParserTest, BareLfInsideTheHeadIs400) {
  // The head terminator is strictly CRLFCRLF; a stray LF inside it is a
  // definite syntax error once the terminator arrives.
  RequestParser parser = feedAll("GET / HTTP/1.1\nHost: x\r\n\r\n");
  EXPECT_EQ(parser.state(), RequestParser::State::Error);
  EXPECT_EQ(parser.errorStatus(), 400);
}

TEST(HttpParserTest, PureLfRequestNeverCompletesAndHitsTheHeaderCap) {
  // A client speaking bare-LF line endings never produces CRLFCRLF, so the
  // parser keeps waiting and the header byte cap delivers the verdict.
  RequestParser::Limits limits;
  limits.maxHeaderBytes = 32;
  RequestParser parser{limits};
  parser.feed("GET / HTTP/1.1\nHost: x\n\n");
  EXPECT_EQ(parser.state(), RequestParser::State::NeedMore);
  parser.feed(std::string(64, 'a'));
  EXPECT_EQ(parser.state(), RequestParser::State::Error);
  EXPECT_EQ(parser.errorStatus(), 431);
}

TEST(HttpParserTest, MalformedContentLengthIs400) {
  // Surrounding OWS is trimmed per RFC 9110, so " 5" is fine — but signs,
  // hex, trailing junk, and u64 overflow are all definite 400s.
  for (const char* length : {"12x", "-1", "+5", "0x10", "99999999999999999999"}) {
    RequestParser parser =
        feedAll(std::string{"POST / HTTP/1.1\r\nContent-Length: "} + length + "\r\n\r\n");
    EXPECT_EQ(parser.state(), RequestParser::State::Error) << length;
    EXPECT_EQ(parser.errorStatus(), 400) << length;
  }
}

TEST(HttpParserTest, ConflictingContentLengthsAre400) {
  RequestParser parser =
      feedAll("POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 6\r\n\r\n");
  EXPECT_EQ(parser.state(), RequestParser::State::Error);
  EXPECT_EQ(parser.errorStatus(), 400);
}

TEST(HttpParserTest, OversizedBodyIs413) {
  RequestParser::Limits limits;
  limits.maxBodyBytes = 16;
  RequestParser parser = feedAll("POST / HTTP/1.1\r\nContent-Length: 17\r\n\r\n", limits);
  EXPECT_EQ(parser.state(), RequestParser::State::Error);
  EXPECT_EQ(parser.errorStatus(), 413);
  // Exactly at the limit is fine.
  RequestParser ok{limits};
  ok.feed("POST / HTTP/1.1\r\nContent-Length: 16\r\n\r\n0123456789abcdef");
  EXPECT_EQ(ok.state(), RequestParser::State::Complete);
}

TEST(HttpParserTest, OversizedHeadersAre431) {
  RequestParser::Limits limits;
  limits.maxHeaderBytes = 64;
  RequestParser parser{limits};
  parser.feed("GET / HTTP/1.1\r\nX-Pad: " + std::string(128, 'a'));
  EXPECT_EQ(parser.state(), RequestParser::State::Error);
  EXPECT_EQ(parser.errorStatus(), 431);
}

TEST(HttpParserTest, TransferEncodingIs501) {
  RequestParser parser =
      feedAll("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
  EXPECT_EQ(parser.state(), RequestParser::State::Error);
  EXPECT_EQ(parser.errorStatus(), 501);
}

TEST(HttpParserTest, BinaryGarbageNeverCrashes) {
  // Deterministic byte storms: every prefix must land in NeedMore or a
  // definite Error/Complete without crashing (ASan guards the memory side).
  support::Rng rng{42};
  for (int round = 0; round < 50; ++round) {
    RequestParser parser;
    std::string chunk;
    for (int i = 0; i < 512; ++i) {
      chunk.push_back(static_cast<char>(rng() & 0xFF));
      if (chunk.size() == 17) {
        parser.feed(chunk);
        chunk.clear();
        if (parser.state() != RequestParser::State::NeedMore) break;
      }
    }
    parser.feed(chunk);
    // No verdict required — only that we got here alive with a sane state.
    const auto state = parser.state();
    EXPECT_TRUE(state == RequestParser::State::NeedMore ||
                state == RequestParser::State::Error ||
                state == RequestParser::State::Complete);
  }
}

TEST(HttpParserTest, ValidHeadThenBinaryBodyIsCarriedVerbatim) {
  // Invalid UTF-8 is not the parser's concern: bytes flow through, the JSON
  // layer rejects them later with a clean 400 (dispatch_test covers that).
  std::string body = "\xFF\xFE\x80 raw bytes \x00 with NUL";
  body.push_back('\x01');
  RequestParser parser;
  parser.feed("POST /v1/lock HTTP/1.1\r\nContent-Length: " + std::to_string(body.size()) +
              "\r\n\r\n" + body);
  ASSERT_EQ(parser.state(), RequestParser::State::Complete);
  EXPECT_EQ(parser.request().body, body);
}

TEST(HttpResponseTest, SerializationCarriesFraming) {
  HttpResponse response;
  response.status = 200;
  response.body = "{\"ok\":true}";
  response.extraHeaders.emplace_back("X-Rtlock-Cache", "hit");
  const std::string text = serializeResponse(response);
  EXPECT_EQ(text.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
  EXPECT_NE(text.find("Content-Length: 11\r\n"), std::string::npos);
  EXPECT_NE(text.find("Content-Type: application/json\r\n"), std::string::npos);
  EXPECT_NE(text.find("X-Rtlock-Cache: hit\r\n"), std::string::npos);
  EXPECT_NE(text.find("Connection: close\r\n"), std::string::npos);
  EXPECT_NE(text.find("\r\n\r\n{\"ok\":true}"), std::string::npos);
}

TEST(HttpResponseTest, StatusReasonsCoverTheServiceCodes) {
  for (const int status : {200, 400, 404, 405, 413, 429, 431, 500, 501, 503, 504}) {
    EXPECT_STRNE(statusReason(status), "") << status;
  }
}

}  // namespace
}  // namespace rtlock::service
