#include "designs/registry.hpp"

#include <gtest/gtest.h>

#include "designs/controllers.hpp"
#include "designs/crypto.hpp"
#include "designs/dsp.hpp"
#include "designs/networks.hpp"
#include "rtl/stats.hpp"
#include "rtl/traverse.hpp"
#include "sim/evaluator.hpp"
#include "support/diagnostics.hpp"

namespace rtlock::designs {
namespace {

using rtl::OpKind;

TEST(RegistryTest, FourteenBenchmarksInPaperOrder) {
  const auto names = benchmarkNames();
  const std::vector<std::string> expected{"DES3", "DFT",  "FIR",     "IDFT",   "IIR",
                                          "MD5",  "RSA",  "SHA256",  "SASC",   "SIM_SPI",
                                          "USB_PHY", "I2C_SL", "N_2046", "N_1023"};
  EXPECT_EQ(names, expected);
}

TEST(RegistryTest, UnknownBenchmarkThrows) {
  EXPECT_THROW((void)makeBenchmark("nope"), support::Error);
}

class BenchmarkProperties : public ::testing::TestWithParam<std::string> {};

TEST_P(BenchmarkProperties, BuildsAndSimulates) {
  const rtl::Module m = makeBenchmark(GetParam());
  EXPECT_EQ(m.name(), GetParam());
  EXPECT_EQ(m.keyWidth(), 0);  // benchmarks ship unlocked

  // Must levelize (no combinational loops) and settle on random stimuli.
  sim::Evaluator eval{m};
  support::Rng rng{1};
  for (const auto id : m.ports()) {
    if (m.signal(id).dir == rtl::PortDir::Input) {
      eval.setValue(id, sim::BitVector::random(m.signal(id).width, rng));
    }
  }
  eval.settle();
  for (const auto clock : eval.clocks()) {
    eval.clockEdge(clock);
    eval.clockEdge(clock);
  }
  SUCCEED();
}

TEST_P(BenchmarkProperties, HasEnoughOperationsForLocking) {
  const rtl::Module m = makeBenchmark(GetParam());
  const rtl::OpCounts counts = rtl::countOps(m);
  // The paper excludes benchmarks with too few operations; ours must all be
  // meaningfully lockable.
  EXPECT_GE(counts.total(), 25) << GetParam();
}

TEST_P(BenchmarkProperties, DeterministicConstruction) {
  EXPECT_TRUE(structurallyEqual(makeBenchmark(GetParam()), makeBenchmark(GetParam())));
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchmarkProperties,
                         ::testing::ValuesIn(benchmarkNames()),
                         [](const auto& info) { return info.param; });

TEST(NetworksTest, N2046IsFullyImbalanced) {
  const rtl::Module m = makeN2046();
  const rtl::OpCounts counts = rtl::countOps(m);
  EXPECT_EQ(counts.of(OpKind::Add), 2046);
  EXPECT_EQ(counts.of(OpKind::Sub), 0);
  EXPECT_EQ(counts.total(), 2046);
}

TEST(NetworksTest, N1023IsFullyBalanced) {
  const rtl::Module m = makeN1023();
  const rtl::OpCounts counts = rtl::countOps(m);
  EXPECT_EQ(counts.of(OpKind::Add), 1023);
  EXPECT_EQ(counts.of(OpKind::Sub), 1023);
  EXPECT_EQ(counts.total(), 2046);
}

TEST(NetworksTest, MixCountsAreExact) {
  const rtl::Module m = makeOperationNetwork(
      "mix", {{OpKind::Mul, 7}, {OpKind::Xor, 5}, {OpKind::Lt, 3}});
  const rtl::OpCounts counts = rtl::countOps(m);
  EXPECT_EQ(counts.of(OpKind::Mul), 7);
  EXPECT_EQ(counts.of(OpKind::Xor), 5);
  EXPECT_EQ(counts.of(OpKind::Lt), 3);
}

TEST(NetworksTest, EmptyMixRejected) {
  EXPECT_THROW((void)makeOperationNetwork("bad", {}), support::ContractViolation);
}

TEST(DspTest, FirOpProfile) {
  const rtl::OpCounts counts = rtl::countOps(makeFir(32));
  EXPECT_EQ(counts.of(OpKind::Mul), 32);
  EXPECT_EQ(counts.of(OpKind::Add), 31);
  EXPECT_EQ(counts.of(OpKind::Sub), 0);
  EXPECT_EQ(counts.of(OpKind::Div), 0);
}

TEST(DspTest, DftBalancedAddSub) {
  const rtl::OpCounts counts = rtl::countOps(makeDft(16));
  EXPECT_EQ(counts.of(OpKind::Add), counts.of(OpKind::Sub));
  EXPECT_GT(counts.of(OpKind::Mul), 0);
  EXPECT_EQ(counts.of(OpKind::Div), 0);
}

TEST(DspTest, IdftHasScalingShifts) {
  const rtl::OpCounts counts = rtl::countOps(makeIdft(16));
  EXPECT_GT(counts.of(OpKind::Shr), 0);
}

TEST(CryptoTest, Md5IsAddBooleanMix) {
  const rtl::OpCounts counts = rtl::countOps(makeMd5());
  EXPECT_GT(counts.of(OpKind::Add), 30);
  EXPECT_GT(counts.of(OpKind::Or), 10);
  EXPECT_GT(counts.of(OpKind::Shl), 10);
  EXPECT_EQ(counts.of(OpKind::Mul), 0);
}

TEST(CryptoTest, RsaHasModularArithmetic) {
  const rtl::OpCounts counts = rtl::countOps(makeRsa());
  EXPECT_GT(counts.of(OpKind::Mul), 10);
  EXPECT_GT(counts.of(OpKind::Mod), 10);
  EXPECT_EQ(counts.of(OpKind::Mul), counts.of(OpKind::Mod));
}

TEST(CryptoTest, Des3IsXorHeavyWithoutArithmetic) {
  const rtl::OpCounts counts = rtl::countOps(makeDes3());
  EXPECT_GT(counts.of(OpKind::Xor), 10);
  EXPECT_EQ(counts.of(OpKind::Add), 0);
  EXPECT_EQ(counts.of(OpKind::Mul), 0);
}

TEST(ControllersTest, ComparisonHeavyProfiles) {
  for (const auto* name : {"SASC", "SIM_SPI", "USB_PHY", "I2C_SL"}) {
    const rtl::OpCounts counts = rtl::countOps(makeBenchmark(name));
    const int compares = counts.of(OpKind::Eq) + counts.of(OpKind::Ne) +
                         counts.of(OpKind::Lt) + counts.of(OpKind::Gt) +
                         counts.of(OpKind::Le) + counts.of(OpKind::Ge);
    EXPECT_GT(compares, 4) << name;
    EXPECT_EQ(counts.of(OpKind::Mul), 0) << name;
  }
}

TEST(ControllersTest, SequentialWithFsms) {
  const rtl::Module m = makeSasc();
  EXPECT_GT(m.processes().size(), 1u);  // comb FSM blocks + sequential
  bool hasCase = false;
  rtl::forEachStmt(m, [&hasCase](const rtl::Stmt& stmt) {
    if (stmt.kind() == rtl::StmtKind::Case) hasCase = true;
  });
  EXPECT_TRUE(hasCase);
}

TEST(DspTest, FirComputesMacChain) {
  // Functional spot-check: with x held constant, after enough clocks the
  // output equals sum(coeff_i) * x (mod 2^16).
  const rtl::Module m = makeFir(4, 16);
  sim::Evaluator eval{m};
  const auto clk = *m.findSignal("clk");
  const auto x = *m.findSignal("x");
  eval.setValue(x, sim::BitVector{3, 16});
  eval.settle();
  for (int i = 0; i < 6; ++i) eval.clockEdge(clk);
  // All 4 delay slots now hold 3; recompute expectation from the wires.
  std::uint64_t expected = 0;
  for (int t = 0; t < 4; ++t) {
    const auto product = eval.value(*m.findSignal("p" + std::to_string(t))).toUint64();
    expected = (expected + product) & 0xFFFF;
  }
  EXPECT_EQ(eval.value(*m.findSignal("y")).toUint64(), expected);
}

}  // namespace
}  // namespace rtlock::designs
