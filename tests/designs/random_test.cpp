#include "designs/random.hpp"

#include <gtest/gtest.h>

#include "rtl/stats.hpp"
#include "sim/evaluator.hpp"

namespace rtlock::designs {
namespace {

TEST(RandomModuleTest, GeneratesRequestedOperationCount) {
  support::Rng rng{1};
  RandomModuleParams params;
  params.operations = 25;
  const rtl::Module m = makeRandomModule(rng, params);
  // At least `operations` binaries (operand expressions may add more).
  EXPECT_GE(rtl::countOps(m).total(), 25);
}

TEST(RandomModuleTest, AlwaysHasPorts) {
  support::Rng rng{2};
  for (int i = 0; i < 20; ++i) {
    const rtl::Module m = makeRandomModule(rng);
    bool hasInput = false;
    bool hasOutput = false;
    for (const auto id : m.ports()) {
      if (m.signal(id).dir == rtl::PortDir::Input) hasInput = true;
      if (m.signal(id).dir == rtl::PortDir::Output) hasOutput = true;
    }
    EXPECT_TRUE(hasInput && hasOutput);
  }
}

TEST(RandomModuleTest, AlwaysSimulable) {
  // No combinational loops, no invalid widths, across many seeds.
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    support::Rng rng{seed};
    const rtl::Module m = makeRandomModule(rng);
    sim::Evaluator eval{m};
    support::Rng stim{seed + 100};
    for (const auto id : m.ports()) {
      if (m.signal(id).dir == rtl::PortDir::Input) {
        eval.setValue(id, sim::BitVector::random(m.signal(id).width, rng));
      }
    }
    eval.settle();
    for (const auto clock : eval.clocks()) eval.clockEdge(clock);
    SUCCEED();
  }
}

TEST(RandomModuleTest, CombinationalOnlyVariant) {
  support::Rng rng{3};
  RandomModuleParams params;
  params.sequential = false;
  const rtl::Module m = makeRandomModule(rng, params);
  EXPECT_TRUE(m.processes().empty());
}

TEST(RandomModuleTest, DifferentSeedsDifferentModules) {
  support::Rng rngA{4};
  support::Rng rngB{5};
  EXPECT_FALSE(structurallyEqual(makeRandomModule(rngA), makeRandomModule(rngB)));
}

TEST(RandomModuleTest, SameSeedSameModule) {
  support::Rng rngA{6};
  support::Rng rngB{6};
  EXPECT_TRUE(structurallyEqual(makeRandomModule(rngA), makeRandomModule(rngB)));
}

}  // namespace
}  // namespace rtlock::designs
