#include "ml/automl.hpp"

#include <gtest/gtest.h>

namespace rtlock::ml {
namespace {

Dataset localityLikeData(support::Rng& rng, int rows, double signal) {
  // Mimics SnapShot localities: feature (C1, C2) with P(k=1 | (a,b)) set by
  // an imbalance table; `signal` in [0.5, 1] controls learnability.
  Dataset data{2};
  for (int i = 0; i < rows; ++i) {
    const auto c1 = static_cast<int>(rng.below(4));
    const auto c2 = static_cast<int>(rng.below(4));
    const double p = (c1 + c2) % 2 == 0 ? signal : 1.0 - signal;
    data.add({static_cast<double>(c1), static_cast<double>(c2)}, rng.chance(p) ? 1 : 0);
  }
  return data;
}

TEST(AutoMlTest, SelectsAccurateModelOnLearnableData) {
  support::Rng rng{1};
  const Dataset train = localityLikeData(rng, 3000, 0.95);
  const Dataset test = localityLikeData(rng, 1500, 0.95);
  AutoMlConfig config;
  config.folds = 3;
  const AutoMlResult result = autoSelect(train, config, rng);
  ASSERT_NE(result.model, nullptr);
  EXPECT_GT(result.bestCvAccuracy, 0.85);
  EXPECT_GT(accuracy(*result.model, test), 0.85);
  EXPECT_FALSE(result.leaderboard.empty());
}

TEST(AutoMlTest, RandomLabelsYieldChanceAccuracy) {
  support::Rng rng{2};
  const Dataset train = localityLikeData(rng, 2000, 0.5);
  const Dataset test = localityLikeData(rng, 1000, 0.5);
  AutoMlConfig config;
  const AutoMlResult result = autoSelect(train, config, rng);
  EXPECT_NEAR(accuracy(*result.model, test), 0.5, 0.07);
}

TEST(AutoMlTest, LeaderboardSortedInsertion) {
  support::Rng rng{3};
  const Dataset train = localityLikeData(rng, 800, 0.9);
  AutoMlConfig config;
  const AutoMlResult result = autoSelect(train, config, rng);
  // Winner's accuracy must equal the leaderboard maximum.
  double best = 0.0;
  for (const auto& entry : result.leaderboard) best = std::max(best, entry.cvAccuracy);
  EXPECT_DOUBLE_EQ(result.bestCvAccuracy, best);
}

TEST(AutoMlTest, EmptyDatasetRejected) {
  support::Rng rng{4};
  const Dataset empty{2};
  EXPECT_THROW((void)autoSelect(empty, {}, rng), support::ContractViolation);
}

TEST(AutoMlTest, RowBudgetStopsSearchEarly) {
  support::Rng rng{5};
  const Dataset train = localityLikeData(rng, 2000, 0.9);
  AutoMlConfig config;
  config.fitRowBudget = 0;  // only the first candidate is evaluated
  const AutoMlResult result = autoSelect(train, config, rng);
  ASSERT_NE(result.model, nullptr);
  EXPECT_EQ(result.leaderboard.size(), 1u);
}

TEST(AutoMlTest, RowBudgetIsDeterministicNotWallClock) {
  // The same budget must cut the portfolio at the same candidate on every
  // run/machine: leaderboards of two identical invocations match exactly.
  support::Rng dataRng{8};
  const Dataset train = localityLikeData(dataRng, 1200, 0.9);
  AutoMlConfig config;
  config.fitRowBudget = 200;  // enough for a prefix of the portfolio only
  support::Rng rngA{9};
  support::Rng rngB{9};
  const AutoMlResult a = autoSelect(train, config, rngA);
  const AutoMlResult b = autoSelect(train, config, rngB);
  ASSERT_EQ(a.leaderboard.size(), b.leaderboard.size());
  EXPECT_LT(a.leaderboard.size(), defaultPortfolio().size());
  for (std::size_t i = 0; i < a.leaderboard.size(); ++i) {
    EXPECT_EQ(a.leaderboard[i].model, b.leaderboard[i].model);
    EXPECT_DOUBLE_EQ(a.leaderboard[i].cvAccuracy, b.leaderboard[i].cvAccuracy);
  }
}

TEST(AutoMlTest, DeterministicGivenSeed) {
  support::Rng dataRng{6};
  const Dataset train = localityLikeData(dataRng, 1500, 0.9);
  support::Rng rngA{7};
  support::Rng rngB{7};
  const AutoMlResult a = autoSelect(train, {}, rngA);
  const AutoMlResult b = autoSelect(train, {}, rngB);
  EXPECT_EQ(a.bestName, b.bestName);
  EXPECT_DOUBLE_EQ(a.bestCvAccuracy, b.bestCvAccuracy);
}

}  // namespace
}  // namespace rtlock::ml
