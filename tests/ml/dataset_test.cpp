#include "ml/dataset.hpp"

#include <gtest/gtest.h>

#include "support/diagnostics.hpp"

namespace rtlock::ml {
namespace {

Dataset sample() {
  Dataset data{2};
  data.add({1.0, 2.0}, 1, 2.0);
  data.add({1.0, 2.0}, 1, 3.0);
  data.add({1.0, 2.0}, 0, 1.0);
  data.add({4.0, 5.0}, 0, 4.0);
  return data;
}

TEST(DatasetTest, BasicAccessors) {
  const Dataset data = sample();
  EXPECT_EQ(data.featureCount(), 2);
  EXPECT_EQ(data.size(), 4u);
  EXPECT_DOUBLE_EQ(data.totalWeight(), 10.0);
  EXPECT_DOUBLE_EQ(data.positiveFraction(), 0.5);
}

TEST(DatasetTest, ValidationRejectsBadRows) {
  Dataset data{2};
  EXPECT_THROW(data.add({1.0}, 0), support::ContractViolation);
  EXPECT_THROW(data.add({1.0, 2.0}, 2), support::ContractViolation);
  EXPECT_THROW(data.add({1.0, 2.0}, 0, 0.0), support::ContractViolation);
}

TEST(DatasetTest, AggregationMergesDuplicates) {
  const Dataset aggregated = sample().aggregated();
  EXPECT_EQ(aggregated.size(), 3u);  // (1,2)/1, (1,2)/0, (4,5)/0
  EXPECT_DOUBLE_EQ(aggregated.totalWeight(), 10.0);
  // The (1,2)/1 row accumulates weight 5.
  bool found = false;
  for (std::size_t i = 0; i < aggregated.size(); ++i) {
    if (aggregated.label(i) == 1) {
      EXPECT_DOUBLE_EQ(aggregated.weight(i), 5.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(DatasetTest, SamplingCapsRowsAndPreservesMass) {
  support::Rng rng{1};
  Dataset data{1};
  for (int i = 0; i < 1000; ++i) data.add({static_cast<double>(i)}, i % 2);
  const Dataset sampled = data.sampled(100, rng);
  EXPECT_EQ(sampled.size(), 100u);
  EXPECT_NEAR(sampled.totalWeight(), 1000.0, 1e-6);
  const Dataset untouched = data.sampled(5000, rng);
  EXPECT_EQ(untouched.size(), 1000u);
}

TEST(DatasetTest, SplitPartitionsRows) {
  support::Rng rng{2};
  Dataset data{1};
  for (int i = 0; i < 1000; ++i) data.add({static_cast<double>(i)}, i % 2);
  const auto [train, test] = data.split(0.8, rng);
  EXPECT_EQ(train.size() + test.size(), 1000u);
  EXPECT_NEAR(static_cast<double>(train.size()), 800.0, 60.0);
}

TEST(DatasetTest, KFoldCoversEveryRowExactlyOnce) {
  support::Rng rng{3};
  Dataset data{1};
  for (int i = 0; i < 100; ++i) data.add({static_cast<double>(i)}, i % 2);
  const auto folds = data.kFold(5, rng);
  ASSERT_EQ(folds.size(), 5u);
  std::size_t validationTotal = 0;
  for (const auto& [train, validation] : folds) {
    EXPECT_EQ(train.size() + validation.size(), 100u);
    validationTotal += validation.size();
  }
  EXPECT_EQ(validationTotal, 100u);
}

TEST(DatasetTest, KFoldNeedsTwoFolds) {
  support::Rng rng{4};
  EXPECT_THROW((void)sample().kFold(1, rng), support::ContractViolation);
}

}  // namespace
}  // namespace rtlock::ml
