#include "ml/dataset.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "support/diagnostics.hpp"

namespace rtlock::ml {
namespace {

Dataset sample() {
  Dataset data{2};
  data.add({1.0, 2.0}, 1, 2.0);
  data.add({1.0, 2.0}, 1, 3.0);
  data.add({1.0, 2.0}, 0, 1.0);
  data.add({4.0, 5.0}, 0, 4.0);
  return data;
}

TEST(DatasetTest, BasicAccessors) {
  const Dataset data = sample();
  EXPECT_EQ(data.featureCount(), 2);
  EXPECT_EQ(data.size(), 4u);
  EXPECT_DOUBLE_EQ(data.totalWeight(), 10.0);
  EXPECT_DOUBLE_EQ(data.positiveFraction(), 0.5);
}

TEST(DatasetTest, ValidationRejectsBadRows) {
  Dataset data{2};
  EXPECT_THROW(data.add({1.0}, 0), support::ContractViolation);
  EXPECT_THROW(data.add({1.0, 2.0}, 2), support::ContractViolation);
  EXPECT_THROW(data.add({1.0, 2.0}, 0, 0.0), support::ContractViolation);
}

TEST(DatasetTest, AggregationMergesDuplicates) {
  const Dataset aggregated = sample().aggregated();
  EXPECT_EQ(aggregated.size(), 3u);  // (1,2)/1, (1,2)/0, (4,5)/0
  EXPECT_DOUBLE_EQ(aggregated.totalWeight(), 10.0);
  // The (1,2)/1 row accumulates weight 5.
  bool found = false;
  for (std::size_t i = 0; i < aggregated.size(); ++i) {
    if (aggregated.label(i) == 1) {
      EXPECT_DOUBLE_EQ(aggregated.weight(i), 5.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(DatasetTest, SamplingCapsRowsAndPreservesMass) {
  support::Rng rng{1};
  Dataset data{1};
  for (int i = 0; i < 1000; ++i) data.add({static_cast<double>(i)}, i % 2);
  const Dataset sampled = data.sampled(100, rng);
  EXPECT_EQ(sampled.size(), 100u);
  EXPECT_NEAR(sampled.totalWeight(), 1000.0, 1e-6);
  const Dataset untouched = data.sampled(5000, rng);
  EXPECT_EQ(untouched.size(), 1000u);
}

TEST(DatasetTest, SplitPartitionsRows) {
  support::Rng rng{2};
  Dataset data{1};
  for (int i = 0; i < 1000; ++i) data.add({static_cast<double>(i)}, i % 2);
  const auto [train, test] = data.split(0.8, rng);
  EXPECT_EQ(train.size() + test.size(), 1000u);
  EXPECT_NEAR(static_cast<double>(train.size()), 800.0, 60.0);
}

TEST(DatasetTest, KFoldCoversEveryRowExactlyOnce) {
  support::Rng rng{3};
  Dataset data{1};
  for (int i = 0; i < 100; ++i) data.add({static_cast<double>(i)}, i % 2);
  const auto folds = data.kFold(5, rng);
  ASSERT_EQ(folds.size(), 5u);
  std::size_t validationTotal = 0;
  for (const auto& [train, validation] : folds) {
    EXPECT_EQ(train.size() + validation.size(), 100u);
    validationTotal += validation.size();
  }
  EXPECT_EQ(validationTotal, 100u);
}

TEST(DatasetTest, KFoldNeedsTwoFolds) {
  support::Rng rng{4};
  EXPECT_THROW((void)sample().kFold(1, rng), support::ContractViolation);
}

TEST(DatasetTest, RowViewsExposeTheFlatMatrix) {
  const Dataset data = sample();
  const RowView row0 = data.row(0);
  ASSERT_EQ(row0.size(), 2u);
  EXPECT_DOUBLE_EQ(row0[0], 1.0);
  EXPECT_DOUBLE_EQ(row0[1], 2.0);
  // Rows are contiguous slices of one backing matrix.
  EXPECT_EQ(data.row(1).data(), data.row(0).data() + 2);
  EXPECT_EQ(data.row(3).data(), data.row(0).data() + 6);
}

/// Reference implementation of the historical deep-copy kFold semantics:
/// shuffle positions, fold = position % folds, materialize per fold.
std::vector<std::pair<Dataset, Dataset>> referenceKFold(const Dataset& data, int folds,
                                                        support::Rng& rng) {
  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(order);
  std::vector<int> foldOf(data.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    foldOf[order[i]] = static_cast<int>(i % static_cast<std::size_t>(folds));
  }
  std::vector<std::pair<Dataset, Dataset>> result;
  for (int fold = 0; fold < folds; ++fold) {
    Dataset train{data.featureCount()};
    Dataset validation{data.featureCount()};
    for (std::size_t i = 0; i < data.size(); ++i) {
      (foldOf[i] == fold ? validation : train).add(data.row(i), data.label(i), data.weight(i));
    }
    result.emplace_back(std::move(train), std::move(validation));
  }
  return result;
}

void expectSameRows(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.featureCount(), b.featureCount());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(std::equal(a.row(i).begin(), a.row(i).end(), b.row(i).begin())) << i;
    EXPECT_EQ(a.label(i), b.label(i)) << i;
    EXPECT_DOUBLE_EQ(a.weight(i), b.weight(i)) << i;
  }
}

TEST(DatasetTest, KFoldViewsMatchHistoricalDeepCopySemantics) {
  support::Rng dataRng{11};
  Dataset data{2};
  for (int i = 0; i < 500; ++i) {
    data.add({static_cast<double>(dataRng.below(5)), static_cast<double>(dataRng.below(3))},
             i % 2, 1.0 + (i % 4));
  }
  // Identical Rng state for both implementations: fold membership must be
  // byte-identical under a fixed seed.
  support::Rng rngA{42};
  support::Rng rngB{42};
  const auto views = data.kFold(3, rngA);
  const auto reference = referenceKFold(data, 3, rngB);
  ASSERT_EQ(views.size(), reference.size());
  for (std::size_t fold = 0; fold < views.size(); ++fold) {
    expectSameRows(views[fold].first.materialized(), reference[fold].first);
    expectSameRows(views[fold].second.materialized(), reference[fold].second);
  }
  // View indices are ascending backing-row positions (the historical
  // iteration order).
  for (const auto& [train, validation] : views) {
    EXPECT_TRUE(std::is_sorted(train.indices().begin(), train.indices().end()));
    EXPECT_TRUE(std::is_sorted(validation.indices().begin(), validation.indices().end()));
  }
}

TEST(DatasetTest, ViewAggregationMatchesMaterializedAggregation) {
  support::Rng dataRng{12};
  Dataset data{2};
  for (int i = 0; i < 400; ++i) {
    data.add({static_cast<double>(dataRng.below(3)), static_cast<double>(dataRng.below(3))},
             static_cast<int>(dataRng.below(2)), 1.0);
  }
  support::Rng rng{13};
  for (const auto& [train, validation] : data.kFold(4, rng)) {
    expectSameRows(train.aggregated(), train.materialized().aggregated());
    expectSameRows(validation.aggregated(), validation.materialized().aggregated());
  }
}

TEST(DatasetTest, KFoldAggregatedMatchesPerViewAggregation) {
  support::Rng dataRng{14};
  Dataset data{2};
  for (int i = 0; i < 600; ++i) {
    data.add({static_cast<double>(dataRng.below(4)), static_cast<double>(dataRng.below(4))},
             static_cast<int>(dataRng.below(2)), 1.0 + (i % 3));
  }
  // Same seed for both paths: kFoldAggregated consumes the Rng exactly like
  // kFold (one shuffle), so downstream draws cannot shift.
  support::Rng rngA{15};
  support::Rng rngB{15};
  const auto fused = data.kFoldAggregated(3, rngA);
  const auto views = data.kFold(3, rngB);
  EXPECT_EQ(rngA(), rngB());  // identical Rng state afterwards
  ASSERT_EQ(fused.folds.size(), views.size());
  for (std::size_t fold = 0; fold < views.size(); ++fold) {
    expectSameRows(fused.folds[fold].first, views[fold].first.aggregated());
    expectSameRows(fused.folds[fold].second, views[fold].second.aggregated());
  }
  expectSameRows(fused.all, data.aggregated());
}

TEST(DatasetTest, SampledIsDeterministicPerSeed) {
  support::Rng dataRng{16};
  Dataset data{1};
  for (int i = 0; i < 300; ++i) data.add({static_cast<double>(i)}, i % 2);
  support::Rng rngA{17};
  support::Rng rngB{17};
  expectSameRows(data.sampled(50, rngA), data.sampled(50, rngB));
}

TEST(DatasetTest, AddingARowViewOfItselfIsSafeAcrossReallocation) {
  Dataset data{2};
  data.add({1.0, 2.0}, 1);
  // Repeated self-appends force several reallocations of the backing matrix
  // while the source span views it.
  for (int i = 0; i < 200; ++i) data.add(data.row(0), data.label(0), data.weight(0));
  ASSERT_EQ(data.size(), 201u);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_DOUBLE_EQ(data.row(i)[0], 1.0) << i;
    EXPECT_DOUBLE_EQ(data.row(i)[1], 2.0) << i;
  }
}

TEST(DatasetTest, AggregationDistinguishesLabelsAndBitPatterns) {
  Dataset data{1};
  data.add({1.0}, 1, 2.0);
  data.add({1.0}, 0, 3.0);   // same features, other label: separate row
  data.add({-0.0}, 1, 1.0);  // -0.0 and 0.0 differ bitwise: separate rows
  data.add({0.0}, 1, 1.0);
  const Dataset aggregated = data.aggregated();
  EXPECT_EQ(aggregated.size(), 4u);
  EXPECT_DOUBLE_EQ(aggregated.totalWeight(), 7.0);
}

}  // namespace
}  // namespace rtlock::ml
