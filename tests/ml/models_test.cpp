// Every model family must (a) learn a linearly separable problem, (b) learn
// the categorical majority-vote problem that SnapShot localities reduce to,
// and (c) respect instance weights.
#include <gtest/gtest.h>

#include "ml/baseline.hpp"
#include "ml/forest.hpp"
#include "ml/knn.hpp"
#include "ml/linear.hpp"
#include "ml/mlp.hpp"
#include "ml/naive_bayes.hpp"
#include "ml/tree.hpp"

namespace rtlock::ml {
namespace {

/// y = 1 iff x0 + x1 > 10, with a margin.
Dataset separableData(support::Rng& rng, int rows) {
  Dataset data{2};
  for (int i = 0; i < rows; ++i) {
    const double x0 = rng.uniform(0.0, 10.0);
    const double x1 = rng.uniform(0.0, 10.0);
    const double sum = x0 + x1;
    if (sum > 9.0 && sum < 11.0) continue;  // margin
    data.add({x0, x1}, sum > 10.0 ? 1 : 0);
  }
  return data;
}

/// Categorical majority problem: P(y=1 | x0=a) = table[a]; Bayes accuracy is
/// the mean of max(p, 1-p).
Dataset categoricalData(support::Rng& rng, int rows) {
  const double table[4] = {0.9, 0.2, 0.7, 0.4};
  Dataset data{2};
  for (int i = 0; i < rows; ++i) {
    const auto category = static_cast<int>(rng.below(4));
    const auto other = static_cast<int>(rng.below(3));
    data.add({static_cast<double>(category), static_cast<double>(other)},
             rng.chance(table[category]) ? 1 : 0);
  }
  return data;
}

std::vector<std::unique_ptr<Classifier>> allModels() {
  std::vector<std::unique_ptr<Classifier>> models;
  models.push_back(std::make_unique<HistogramClassifier>());
  models.push_back(std::make_unique<CategoricalNaiveBayes>());
  models.push_back(std::make_unique<GaussianNaiveBayes>());
  models.push_back(std::make_unique<LogisticRegression>());
  models.push_back(std::make_unique<DecisionTree>());
  models.push_back(std::make_unique<RandomForest>());
  models.push_back(std::make_unique<KnnClassifier>());
  models.push_back(std::make_unique<MlpClassifier>());
  return models;
}

TEST(ModelsTest, AllModelsLearnSeparableProblem) {
  support::Rng rng{1};
  const Dataset train = separableData(rng, 800);
  const Dataset test = separableData(rng, 400);
  for (auto& model : allModels()) {
    if (model->name().rfind("histogram", 0) == 0 ||
        model->name().rfind("categorical", 0) == 0) {
      continue;  // table models do not generalize continuous features
    }
    support::Rng fitRng{2};
    model->fit(train, fitRng);
    EXPECT_GT(accuracy(*model, test), 0.9) << model->name();
  }
}

TEST(ModelsTest, AllModelsLearnCategoricalMajority) {
  support::Rng rng{3};
  const Dataset train = categoricalData(rng, 4000);
  const Dataset test = categoricalData(rng, 2000);
  // Bayes accuracy = mean(0.9, 0.8, 0.7, 0.6) = 0.75.  The mapping category
  // -> P(y=1) is non-monotone in the raw code, which linear/distance models
  // cannot represent without one-hot features — they only need to beat the
  // majority floor; table and tree models must approach the Bayes rate.
  for (auto& model : allModels()) {
    support::Rng fitRng{4};
    model->fit(train, fitRng);
    const std::string name = model->name();
    const bool linearFamily = name.rfind("gaussian", 0) == 0 ||
                              name.rfind("logistic", 0) == 0 || name.rfind("knn", 0) == 0;
    const double floor = linearFamily ? 0.45 : 0.65;
    EXPECT_GT(accuracy(*model, test), floor) << name;
    EXPECT_LT(accuracy(*model, test), 0.85) << name;
  }
}

TEST(ModelsTest, MajorityClassifierMatchesPrior) {
  Dataset data{1};
  for (int i = 0; i < 10; ++i) data.add({0.0}, i < 7 ? 1 : 0);
  MajorityClassifier model;
  support::Rng rng{5};
  model.fit(data, rng);
  EXPECT_NEAR(model.predictProba({0.0}), 0.7, 1e-9);
  EXPECT_EQ(model.predict({123.0}), 1);
}

TEST(ModelsTest, HistogramRespectsWeights) {
  Dataset data{1};
  data.add({1.0}, 1, 10.0);
  data.add({1.0}, 0, 1.0);
  data.add({2.0}, 0, 10.0);
  data.add({2.0}, 1, 1.0);
  HistogramClassifier model{0.0};
  support::Rng rng{6};
  model.fit(data, rng);
  EXPECT_EQ(model.predict({1.0}), 1);
  EXPECT_EQ(model.predict({2.0}), 0);
  EXPECT_NEAR(model.predictProba({1.0}), 10.0 / 11.0, 1e-9);
}

TEST(ModelsTest, HistogramFallsBackToPriorOnUnseen) {
  Dataset data{1};
  data.add({1.0}, 1, 3.0);
  data.add({2.0}, 0, 1.0);
  HistogramClassifier model;
  support::Rng rng{7};
  model.fit(data, rng);
  EXPECT_NEAR(model.predictProba({999.0}), 0.75, 1e-9);
}

TEST(ModelsTest, WeightedDataEquivalentToRepeatedRows) {
  // A weighted dataset and its expansion must produce the same tree.
  Dataset weighted{1};
  weighted.add({1.0}, 1, 5.0);
  weighted.add({2.0}, 0, 5.0);
  weighted.add({1.0}, 0, 1.0);

  Dataset expanded{1};
  for (int i = 0; i < 5; ++i) expanded.add({1.0}, 1);
  for (int i = 0; i < 5; ++i) expanded.add({2.0}, 0);
  expanded.add({1.0}, 0);

  DecisionTree a;
  DecisionTree b;
  support::Rng rngA{8};
  support::Rng rngB{8};
  a.fit(weighted, rngA);
  b.fit(expanded, rngB);
  for (const double x : {0.5, 1.0, 1.5, 2.0, 2.5}) {
    EXPECT_NEAR(a.predictProba({x}), b.predictProba({x}), 1e-9) << x;
  }
}

TEST(ModelsTest, TreeDepthZeroIsLeaf) {
  support::Rng rng{9};
  Dataset data{1};
  for (int i = 0; i < 20; ++i) data.add({static_cast<double>(i)}, i < 15 ? 1 : 0);
  TreeHyper hyper;
  hyper.maxDepth = 0;
  DecisionTree model{hyper};
  model.fit(data, rng);
  EXPECT_NEAR(model.predictProba({0.0}), 0.75, 1e-9);
  EXPECT_NEAR(model.predictProba({19.0}), 0.75, 1e-9);
}

TEST(ModelsTest, FreshProducesUntrainedCopy) {
  support::Rng rng{10};
  const Dataset train = categoricalData(rng, 500);
  for (auto& model : allModels()) {
    auto copy = model->fresh();
    EXPECT_EQ(copy->name(), model->name());
    EXPECT_NEAR(copy->predictProba({0.0, 0.0}), 0.5, 0.5);  // must not crash
  }
}

TEST(ModelsTest, PredictProbaInUnitInterval) {
  support::Rng rng{11};
  const Dataset train = categoricalData(rng, 1000);
  for (auto& model : allModels()) {
    support::Rng fitRng{12};
    model->fit(train, fitRng);
    for (int trial = 0; trial < 50; ++trial) {
      const FeatureRow row{static_cast<double>(rng.below(6)),
                           static_cast<double>(rng.below(6))};
      const double proba = model->predictProba(row);
      EXPECT_GE(proba, 0.0) << model->name();
      EXPECT_LE(proba, 1.0) << model->name();
    }
  }
}

}  // namespace
}  // namespace rtlock::ml
