// Full-flow integration: Verilog text -> parse -> lock -> write -> reparse ->
// simulate (equivalence) -> attack, mirroring how a downstream user drives
// the library.
#include <gtest/gtest.h>

#include "attack/snapshot.hpp"
#include "core/algorithms.hpp"
#include "designs/registry.hpp"
#include "sim/harness.hpp"
#include "verilog/parser.hpp"
#include "verilog/writer.hpp"

namespace rtlock {
namespace {

constexpr const char* kSource = R"(
module mac4 (clk, x, c0, c1, y);
  input clk;
  input [15:0] x;
  input [15:0] c0;
  input [15:0] c1;
  output [15:0] y;
  reg [15:0] d0;
  reg [15:0] d1;
  wire [15:0] p0;
  wire [15:0] p1;
  wire [15:0] s;

  assign p0 = d0 * c0;
  assign p1 = d1 * c1;
  assign s = p0 + p1;
  assign y = s ^ 16'h5a5a;

  always @(posedge clk) begin
    d0 <= x;
    d1 <= d0;
  end
endmodule
)";

TEST(EndToEndTest, ParseLockWriteReparseSimulate) {
  // 1. Parse the vendor RTL.
  rtl::Module original = verilog::parseModule(kSource);

  // 2. Lock a clone with ERA.
  rtl::Module locked = original.clone();
  support::Rng rng{1};
  lock::LockEngine engine{locked, lock::PairTable::fixed()};
  const auto report = lock::eraLock(engine, engine.initialLockableOps(), rng);
  EXPECT_GT(report.bitsUsed, 0);
  EXPECT_DOUBLE_EQ(report.finalRestrictedMetric, 100.0);

  // 3. Emit the locked design and read it back (foundry handoff).
  const std::string lockedText = verilog::writeModule(locked);
  const rtl::Module reparsed = verilog::parseModule(lockedText);
  EXPECT_TRUE(structurallyEqual(locked, reparsed));

  // 4. The reparsed locked design under the correct key matches the original.
  sim::BitVector key{reparsed.keyWidth()};
  for (const auto& record : engine.records()) key.setBit(record.keyIndex, record.keyValue);
  support::Rng simRng{2};
  EXPECT_TRUE(sim::functionallyEquivalent(original, reparsed, key, {}, simRng));

  // 5. And under a flipped key it does not.
  sim::BitVector wrong = key;
  for (int i = 0; i < wrong.width(); ++i) wrong.setBit(i, !wrong.bit(i));
  support::Rng simRng2{3};
  EXPECT_FALSE(sim::functionallyEquivalent(original, reparsed, wrong, {}, simRng2));
}

TEST(EndToEndTest, AttackerSeesReconstructedRtlOnly) {
  // Threat model: the attacker reverse engineers the locked RTL (here: the
  // emitted text) and runs SnapShot on it.  ASSURE-locked imbalanced design
  // leaks; the attack on the reparsed module must reach high KPA.
  rtl::Module original = designs::makeBenchmark("FIR");
  rtl::Module locked = original.clone();
  support::Rng rng{4};
  lock::LockEngine engine{locked, lock::PairTable::fixed()};
  const int budget = static_cast<int>(0.75 * engine.initialLockableOps());
  lock::assureSerialLock(engine, budget, rng);
  const auto truth = engine.records();

  rtl::Module reconstructed = verilog::parseModule(verilog::writeModule(locked));

  attack::SnapshotConfig config;
  config.relockRounds = 40;
  config.automl.folds = 2;
  support::Rng attackRng{5};
  const auto result =
      attack::snapshotAttack(reconstructed, truth, lock::PairTable::fixed(), config, attackRng);
  EXPECT_GT(result.kpa, 80.0);  // FIR is fully imbalanced (mul/add only)
}

TEST(EndToEndTest, EraSurvivesSameFlow) {
  rtl::Module original = designs::makeBenchmark("FIR");
  rtl::Module locked = original.clone();
  support::Rng rng{6};
  lock::LockEngine engine{locked, lock::PairTable::fixed()};
  const int budget = static_cast<int>(0.75 * engine.initialLockableOps());
  lock::eraLock(engine, budget, rng);
  const auto truth = engine.records();

  rtl::Module reconstructed = verilog::parseModule(verilog::writeModule(locked));

  attack::SnapshotConfig config;
  config.relockRounds = 40;
  config.automl.folds = 2;
  support::Rng attackRng{7};
  const auto result =
      attack::snapshotAttack(reconstructed, truth, lock::PairTable::fixed(), config, attackRng);
  EXPECT_LT(result.kpa, 70.0);
}

TEST(EndToEndTest, LeakyPairingIsInferable) {
  // Sec. 3.2: under the original ASSURE table, a (*, +) pair reveals * as
  // the real operation.  Train on relocks and verify near-perfect KPA on the
  // mul-locked bits even though the design mixes operators.
  rtl::Module locked = designs::makeBenchmark("RSA");
  support::Rng rng{8};
  lock::LockEngine engine{locked, lock::PairTable::assureOriginal()};
  const int budget = static_cast<int>(0.75 * engine.initialLockableOps());
  lock::assureRandomLock(engine, budget, rng);

  std::vector<lock::LockRecord> mulBits;
  for (const auto& record : engine.records()) {
    if (record.realOp == rtl::OpKind::Mul) mulBits.push_back(record);
  }
  ASSERT_FALSE(mulBits.empty());

  attack::SnapshotConfig config;
  config.relockRounds = 60;
  config.automl.folds = 2;
  support::Rng attackRng{9};
  const auto result =
      attack::snapshotAttack(locked, mulBits, lock::PairTable::assureOriginal(), config,
                             attackRng);
  EXPECT_GT(result.kpa, 85.0);  // double-locked ops yield ambiguous (MUX, op) localities
}

}  // namespace
}  // namespace rtlock
