// Property suite: every locking algorithm preserves the original function
// under the correct key, on every benchmark, across seeds — and corrupts the
// function under a flipped key.
#include <gtest/gtest.h>

#include "core/algorithms.hpp"
#include "designs/registry.hpp"
#include "sim/harness.hpp"

namespace rtlock {
namespace {

struct Scenario {
  std::string benchmark;
  lock::Algorithm algorithm;
  std::uint64_t seed;
};

std::vector<Scenario> scenarios() {
  // Small-to-medium benchmarks across all algorithms (large networks are
  // covered by dedicated tests; simulating 2046 ops per vector is bench
  // territory).
  const std::vector<std::string> benchmarks{"FIR", "IIR", "MD5", "SHA256",
                                            "DES3", "RSA", "SASC", "I2C_SL"};
  const std::vector<lock::Algorithm> algorithms{
      lock::Algorithm::AssureSerial, lock::Algorithm::AssureRandom, lock::Algorithm::Hra,
      lock::Algorithm::Greedy, lock::Algorithm::Era};
  std::vector<Scenario> result;
  std::uint64_t seed = 1;
  for (const auto& benchmark : benchmarks) {
    for (const auto algorithm : algorithms) {
      result.push_back(Scenario{benchmark, algorithm, seed++});
    }
  }
  return result;
}

class FunctionalPreservation : public ::testing::TestWithParam<Scenario> {};

TEST_P(FunctionalPreservation, CorrectKeyPreservesFunction) {
  const Scenario& scenario = GetParam();
  const rtl::Module original = designs::makeBenchmark(scenario.benchmark);
  rtl::Module locked = original.clone();

  support::Rng rng{scenario.seed};
  lock::LockEngine engine{locked, lock::PairTable::fixed()};
  const int budget = std::max(1, engine.initialLockableOps() / 2);
  const auto report = lock::lockWithAlgorithm(engine, scenario.algorithm, budget, rng);
  ASSERT_GT(report.bitsUsed, 0);

  sim::BitVector key{locked.keyWidth()};
  for (const auto& record : engine.records()) key.setBit(record.keyIndex, record.keyValue);

  sim::EquivalenceOptions options;
  options.vectors = 12;
  options.cyclesPerVector = 3;
  support::Rng simRng{scenario.seed + 1000};
  const auto mismatch = sim::findMismatch(original, locked, key, options, simRng);
  EXPECT_FALSE(mismatch.has_value())
      << "output " << (mismatch ? mismatch->output : "") << " diverged";
}

TEST_P(FunctionalPreservation, FlippedKeyCorruptsFunction) {
  const Scenario& scenario = GetParam();
  const rtl::Module original = designs::makeBenchmark(scenario.benchmark);
  rtl::Module locked = original.clone();

  support::Rng rng{scenario.seed};
  lock::LockEngine engine{locked, lock::PairTable::fixed()};
  const int budget = std::max(1, engine.initialLockableOps() / 2);
  lock::lockWithAlgorithm(engine, scenario.algorithm, budget, rng);

  // All-bits-flipped key: every mux selects its dummy branch.
  sim::BitVector wrongKey{locked.keyWidth()};
  for (const auto& record : engine.records()) {
    wrongKey.setBit(record.keyIndex, !record.keyValue);
  }

  // Deep pipelines (FIR has a 32-stage delay line) only expose corruption
  // once stimuli reach the locked stage; run long vectors.
  sim::EquivalenceOptions options;
  options.vectors = 6;
  options.cyclesPerVector = 40;
  support::Rng simRng{scenario.seed + 2000};
  EXPECT_FALSE(sim::functionallyEquivalent(original, locked, wrongKey, options, simRng));
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, FunctionalPreservation, ::testing::ValuesIn(scenarios()),
    [](const ::testing::TestParamInfo<Scenario>& info) {
      std::string name = info.param.benchmark + "_";
      name += lock::algorithmName(info.param.algorithm);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace rtlock
