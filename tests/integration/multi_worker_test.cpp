// Kill-the-worker battery for the multi-host campaign engine, end to end
// through the real binary.
//
// For each thread count (1, 4, hardware): worker A starts the fleet and is
// crash-killed mid-cell via RTLOCK_FAULT_INJECT (_Exit — no unwinding, no
// flushes), leaving an orphaned claim and a partial journal.  Workers B and
// C then race the same manifest concurrently, wait out A's lease, steal the
// orphan, and converge.  Both survivors' reports, the offline `rtlock
// merge`, and a replay of the merged journal through `rtlock eval` must all
// be byte-identical to an uninterrupted single-process serial reference.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "campaign/fault.hpp"

namespace rtlock {
namespace {

namespace fs = std::filesystem;

const std::string kBinary = RTLOCK_CLI_BINARY;
const std::string kAlu8 = std::string{RTLOCK_EXAMPLES_DIR} + "/external/alu8.v";

// serial,hra x seeds 1,2 → manifest cells 0..3; the kill fires on cell 2.
const std::string kGrid = "--algos=serial,hra --seeds=1,2 --samples=1 --rounds=30 --no-wall";

struct RunResult {
  int exitCode = -1;
  std::string out;
};

std::string slurp(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int exitCodeOf(int status) { return WIFEXITED(status) ? WEXITSTATUS(status) : -1; }

/// Runs one rtlock invocation via the shell; `fault` (may be empty) becomes
/// RTLOCK_FAULT_INJECT for just that invocation.
RunResult runBinary(const std::string& args, const std::string& fault, const std::string& tag) {
  const std::string outPath = ::testing::TempDir() + "multi_worker_" + tag + ".out";
  std::string command;
  if (!fault.empty()) command += "RTLOCK_FAULT_INJECT='" + fault + "' ";
  command += "'" + kBinary + "' " + args + " > '" + outPath + "' 2>/dev/null";
  const int status = std::system(command.c_str());
  RunResult result;
  result.exitCode = exitCodeOf(status);
  result.out = slurp(outPath);
  return result;
}

/// Runs two worker invocations concurrently (one backgrounded) and returns
/// both results.  The shell's `wait` collects the background worker's exit
/// code so neither subprocess is orphaned.
std::pair<RunResult, RunResult> runWorkerPair(const std::string& argsA, const std::string& argsB,
                                              const std::string& tag) {
  const std::string outA = ::testing::TempDir() + "multi_worker_" + tag + "_a.out";
  const std::string outB = ::testing::TempDir() + "multi_worker_" + tag + "_b.out";
  const std::string statusA = ::testing::TempDir() + "multi_worker_" + tag + "_a.status";
  const std::string command = "'" + kBinary + "' " + argsA + " > '" + outA +
                              "' 2>/dev/null & pid=$!; '" + kBinary + "' " + argsB + " > '" + outB +
                              "' 2>/dev/null; second=$?; wait $pid; echo $? > '" + statusA +
                              "'; exit $second";
  const int status = std::system(command.c_str());
  std::pair<RunResult, RunResult> results;
  results.first.exitCode = std::atoi(slurp(statusA).c_str());
  results.first.out = slurp(outA);
  results.second.exitCode = exitCodeOf(status);
  results.second.out = slurp(outB);
  return results;
}

std::string workArgs(const std::string& manifest, const std::string& owner, int threads) {
  std::string args = "work '" + kAlu8 + "' --manifest='" + manifest + "' --owner=" + owner +
                     " --lease-ms=1500 --poll-ms=25 --max-wait-ms=60000 " + kGrid;
  if (threads > 0) args += " --threads=" + std::to_string(threads);
  return args;
}

TEST(MultiWorkerTest, CrashedWorkerIsReclaimedAndTheFleetConvergesByteIdentical) {
  ASSERT_TRUE(fs::exists(kBinary)) << kBinary;
  ASSERT_TRUE(fs::exists(kAlu8)) << kAlu8;

  // The uninterrupted single-process reference every fleet must reproduce.
  const RunResult reference =
      runBinary("eval '" + kAlu8 + "' " + kGrid + " --threads=1", "", "reference");
  ASSERT_EQ(reference.exitCode, 0);
  ASSERT_FALSE(reference.out.empty());

  for (const int threads : {1, 4, 0}) {
    const std::string tag = "t" + std::to_string(threads);
    const std::string dir = ::testing::TempDir() + "multi_worker_" + tag;
    fs::remove_all(dir);
    fs::create_directories(dir);
    const std::string manifest = dir + "/campaign.manifest";

    // Worker A is crash-killed executing manifest cell 2: done markers and
    // journal rows for earlier cells survive, cell 2's claim is orphaned.
    const RunResult crashed =
        runBinary(workArgs(manifest, "workerA", threads), "cell:2:crash", tag + "_crash");
    ASSERT_EQ(crashed.exitCode, campaign::kCrashExitCode) << "threads=" << threads;

    // Workers B and C race the survivors' share concurrently.  Both must
    // wait out A's lease, converge, and print the merged report.
    const auto [b, c] = runWorkerPair(workArgs(manifest, "workerB", threads),
                                      workArgs(manifest, "workerC", threads), tag + "_pair");
    ASSERT_EQ(b.exitCode, 0) << "threads=" << threads;
    ASSERT_EQ(c.exitCode, 0) << "threads=" << threads;
    EXPECT_EQ(b.out, reference.out) << "threads=" << threads;
    EXPECT_EQ(c.out, reference.out) << "threads=" << threads;

    // Offline merge over the per-worker journals reproduces the same bytes.
    const std::string mergedJournal = dir + "/merged.jsonl";
    const RunResult merged = runBinary(
        "merge --manifest='" + manifest + "' --no-wall --out='" + mergedJournal + "'", "",
        tag + "_merge");
    ASSERT_EQ(merged.exitCode, 0) << "threads=" << threads;
    EXPECT_EQ(merged.out, reference.out) << "threads=" << threads;

    // Out-of-order merge: listing the journals in reverse yields the same
    // bytes (the merge is journal-order independent).
    std::string reversed;
    {
      std::vector<std::string> journals;
      for (const fs::directory_entry& entry : fs::directory_iterator{manifest + ".journals"}) {
        if (entry.path().extension() == ".jsonl") journals.push_back(entry.path().string());
      }
      ASSERT_GE(journals.size(), 2u) << "threads=" << threads;
      std::sort(journals.rbegin(), journals.rend());
      for (const std::string& journal : journals) reversed += " '" + journal + "'";
    }
    // Positionals go first: a bare boolean flag would greedily consume a
    // following journal path as its value (CLI-wide `--flag value` syntax).
    const RunResult mergedReversed =
        runBinary("merge" + reversed + " --manifest='" + manifest + "' --no-wall", "",
                  tag + "_merge_rev");
    ASSERT_EQ(mergedReversed.exitCode, 0) << "threads=" << threads;
    EXPECT_EQ(mergedReversed.out, reference.out) << "threads=" << threads;

    // Replaying the merged journal through single-process eval recomputes
    // nothing and still emits the reference bytes.
    std::string replayArgs = "eval '" + kAlu8 + "' " + kGrid + " --journal='" + mergedJournal + "'";
    if (threads > 0) replayArgs += " --threads=" + std::to_string(threads);
    const RunResult replay = runBinary(replayArgs, "", tag + "_replay");
    ASSERT_EQ(replay.exitCode, 0) << "threads=" << threads;
    EXPECT_EQ(replay.out, reference.out) << "threads=" << threads;
  }
}

TEST(MultiWorkerTest, RestartedWorkerResumesFromItsOwnJournal) {
  ASSERT_TRUE(fs::exists(kBinary)) << kBinary;
  const std::string dir = ::testing::TempDir() + "multi_worker_resume";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string manifest = dir + "/campaign.manifest";

  // Crash worker A at cell 2, then restart the SAME owner id: it must
  // satisfy its finished cells from its own journal, reclaim its orphaned
  // claim immediately (same owner — no lease wait), and finish alone.
  const RunResult crashed =
      runBinary(workArgs(manifest, "workerA", 1), "cell:2:crash", "resume_crash");
  ASSERT_EQ(crashed.exitCode, campaign::kCrashExitCode);

  const std::string reference =
      runBinary("eval '" + kAlu8 + "' " + kGrid + " --threads=1", "", "resume_reference").out;
  const RunResult restarted = runBinary(workArgs(manifest, "workerA", 1), "", "resume_restart");
  ASSERT_EQ(restarted.exitCode, 0);
  EXPECT_EQ(restarted.out, reference);
}

}  // namespace
}  // namespace rtlock
