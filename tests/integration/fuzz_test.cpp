// Property fuzzing over randomly generated modules: the parser/writer round
// trip, the lock/undo cycle, functional preservation, and the simulator must
// hold for arbitrary well-formed designs, not just the curated benchmarks.
#include <gtest/gtest.h>

#include "core/algorithms.hpp"
#include "designs/random.hpp"
#include "sim/harness.hpp"
#include "verilog/parser.hpp"
#include "verilog/writer.hpp"

namespace rtlock {
namespace {

class FuzzProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzProperty, VerilogRoundTripIsStable) {
  support::Rng rng{GetParam()};
  const rtl::Module module = designs::makeRandomModule(rng);
  const std::string once = verilog::writeModule(module);
  const rtl::Module reparsed = verilog::parseModule(once);
  EXPECT_TRUE(structurallyEqual(module, reparsed)) << once;
  EXPECT_EQ(verilog::writeModule(reparsed), once);
}

TEST_P(FuzzProperty, LockUndoRestoresDesign) {
  support::Rng rng{GetParam() + 1000};
  rtl::Module module = designs::makeRandomModule(rng);
  const rtl::Module reference = module.clone();
  lock::LockEngine engine{module, lock::PairTable::fixed()};
  const int total = engine.totalLockableOps();
  if (total == 0) return;

  for (int round = 0; round < 3; ++round) {
    const auto checkpoint = engine.checkpoint();
    for (int i = 0; i < total; ++i) {
      ASSERT_TRUE(engine.lockRandomOp(rng));
    }
    engine.undoTo(checkpoint);
    ASSERT_TRUE(structurallyEqual(module, reference)) << "round " << round;
  }
}

TEST_P(FuzzProperty, EveryAlgorithmPreservesFunction) {
  support::Rng rng{GetParam() + 2000};
  const rtl::Module original = designs::makeRandomModule(rng);

  for (const auto algorithm :
       {lock::Algorithm::AssureSerial, lock::Algorithm::Hra, lock::Algorithm::Era}) {
    rtl::Module locked = original.clone();
    lock::LockEngine engine{locked, lock::PairTable::fixed()};
    if (engine.initialLockableOps() == 0) continue;
    const int budget = std::max(1, engine.initialLockableOps() / 2);
    lock::lockWithAlgorithm(engine, algorithm, budget, rng);

    sim::BitVector key{std::max(locked.keyWidth(), 1)};
    for (const auto& record : engine.records()) key.setBit(record.keyIndex, record.keyValue);

    sim::EquivalenceOptions options;
    options.vectors = 6;
    options.cyclesPerVector = 3;
    support::Rng simRng{GetParam() + 3000};
    EXPECT_TRUE(sim::functionallyEquivalent(original, locked, key, options, simRng))
        << lock::algorithmName(algorithm);
  }
}

TEST_P(FuzzProperty, LockedRoundTripStillEquivalent) {
  // write(locked) -> parse -> simulate == original under the correct key.
  support::Rng rng{GetParam() + 4000};
  const rtl::Module original = designs::makeRandomModule(rng);
  rtl::Module locked = original.clone();
  lock::LockEngine engine{locked, lock::PairTable::fixed()};
  if (engine.initialLockableOps() == 0) return;
  lock::assureRandomLock(engine, std::max(1, engine.initialLockableOps() / 2), rng);

  const rtl::Module reparsed = verilog::parseModule(verilog::writeModule(locked));
  sim::BitVector key{std::max(reparsed.keyWidth(), 1)};
  for (const auto& record : engine.records()) key.setBit(record.keyIndex, record.keyValue);

  sim::EquivalenceOptions options;
  options.vectors = 6;
  options.cyclesPerVector = 3;
  support::Rng simRng{GetParam() + 5000};
  EXPECT_TRUE(sim::functionallyEquivalent(original, reparsed, key, options, simRng));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88, 99, 110, 121, 132,
                                           143, 154, 165, 176));

}  // namespace
}  // namespace rtlock
