// Crash–resume determinism, end to end through the real binary.
//
// A fig6-sized eval grid (3 algorithms x 3 seeds on the alu8 fixture) is
// killed mid-campaign at three injected crash points (RTLOCK_FAULT_INJECT
// cell crashes — _Exit, no unwinding, no flushes: the portable kill -9),
// resumed from the journal after each kill, and the merged report is
// byte-compared against an uninterrupted serial run.  The whole exercise
// repeats at --threads 1, 4 and hardware: substream determinism plus the
// journal's row identity must make every path converge to the same bytes.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/fault.hpp"
#include "support/json.hpp"

namespace rtlock {
namespace {

const std::string kBinary = RTLOCK_CLI_BINARY;
const std::string kAlu8 = std::string{RTLOCK_EXAMPLES_DIR} + "/external/alu8.v";

struct RunResult {
  int exitCode = -1;
  std::string out;
};

std::string slurp(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Runs the rtlock binary via the shell; `fault` (may be empty) becomes
/// RTLOCK_FAULT_INJECT for just that invocation.
RunResult runBinary(const std::string& args, const std::string& fault, const std::string& tag) {
  const std::string outPath = ::testing::TempDir() + "campaign_resume_" + tag + ".out";
  std::string command;
  if (!fault.empty()) command += "RTLOCK_FAULT_INJECT='" + fault + "' ";
  command += "'" + kBinary + "' " + args + " > '" + outPath + "' 2>/dev/null";
  const int status = std::system(command.c_str());
  RunResult result;
  if (WIFEXITED(status)) result.exitCode = WEXITSTATUS(status);
  result.out = slurp(outPath);
  return result;
}

std::string gridArgs(const std::string& journal, int threads) {
  std::string args = "eval '" + kAlu8 +
                     "' --algos=serial,hra,era --seeds=1,2,3 --samples=1 --rounds=30 --no-wall";
  if (!journal.empty()) args += " --journal='" + journal + "'";
  if (threads > 0) args += " --threads=" + std::to_string(threads);
  return args;
}

/// Unique ok cells in the journal (header excluded); hard-fails on rows
/// that do not parse, since after a clean convergence none may be torn.
std::set<std::string> journaledOkCells(const std::string& path) {
  std::set<std::string> cells;
  std::ifstream in{path, std::ios::binary};
  std::string line;
  bool header = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const support::JsonValue row = support::parseJson(line);
    if (header) {
      header = false;
      continue;
    }
    if (row.at("status").asString() == "ok") cells.insert(row.at("cell").asString());
  }
  return cells;
}

TEST(CampaignResumeTest, KilledCampaignConvergesToSerialReferenceAtEveryThreadCount) {
  ASSERT_TRUE(std::filesystem::exists(kBinary)) << kBinary;
  ASSERT_TRUE(std::filesystem::exists(kAlu8)) << kAlu8;

  // The uninterrupted serial reference every resumed run must reproduce.
  const RunResult reference = runBinary(gridArgs("", 1), "", "reference");
  ASSERT_EQ(reference.exitCode, 0);
  ASSERT_FALSE(reference.out.empty());

  const std::vector<std::size_t> crashCells{2, 5, 8};
  for (const int threads : {1, 4, 0}) {
    const std::string tag = "t" + std::to_string(threads);
    const std::string journal = ::testing::TempDir() + "campaign_resume_" + tag + ".jsonl";
    std::filesystem::remove(journal);

    // Kill the campaign at each crash point in turn, resuming in between.
    // Serially (threads=1) every kill must actually fire; with workers a
    // crash cell can already be journaled by the time its fault would
    // trigger, in which case that run simply completes.
    for (std::size_t k = 0; k < crashCells.size(); ++k) {
      const std::string fault = "cell:" + std::to_string(crashCells[k]) + ":crash";
      const RunResult killed =
          runBinary(gridArgs(journal, threads), fault, tag + "_kill" + std::to_string(k));
      if (threads == 1) {
        ASSERT_EQ(killed.exitCode, campaign::kCrashExitCode) << "kill " << k;
      } else {
        ASSERT_TRUE(killed.exitCode == campaign::kCrashExitCode || killed.exitCode == 0)
            << "kill " << k << " exited " << killed.exitCode;
      }
    }

    // Final resume with no faults: completes, and the merged report is
    // byte-identical to the uninterrupted serial run.
    const RunResult resumed = runBinary(gridArgs(journal, threads), "", tag + "_final");
    ASSERT_EQ(resumed.exitCode, 0) << "threads=" << threads;
    EXPECT_EQ(resumed.out, reference.out) << "threads=" << threads;
    EXPECT_EQ(journaledOkCells(journal).size(), 9u) << "threads=" << threads;

    // And a re-run over the complete journal recomputes nothing yet still
    // emits the same bytes.
    const RunResult replay = runBinary(gridArgs(journal, threads), "", tag + "_replay");
    ASSERT_EQ(replay.exitCode, 0);
    EXPECT_EQ(replay.out, reference.out);
  }
}

}  // namespace
}  // namespace rtlock
