// Thread-count invariance of the experiment engine (the property the whole
// reproduction leans on: sharded runs must be *bit-identical* to the serial
// reference path, so a reviewer on a 64-core box and CI on 2 cores argue
// about the same numbers).
//
// Covered here:
//  * evaluateBenchmark at threads 1 / 4 / hardware — byte-identical
//    EvaluationResult (every double compared by bit pattern, not epsilon);
//  * the fig4 scenario grid sharded across pools of different sizes —
//    identical observation streams;
//  * two identically-seeded serial runs — the regression guard for the
//    Rng substream convention (if the derivation ever changes, this and the
//    committed BENCH_baseline.json change together, loudly).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "attack/pipeline.hpp"
#include "designs/networks.hpp"
#include "fig4_scenarios.hpp"
#include "support/task_pool.hpp"

namespace rtlock::attack {
namespace {

/// Bitwise double equality: NaN-safe, and strict about -0.0 vs 0.0 — the
/// point is byte-identity of the result, not numeric closeness.
::testing::AssertionResult bitEqual(double a, double b) {
  if (std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a << " and " << b << " differ ("
         << std::bit_cast<std::uint64_t>(a) << " vs " << std::bit_cast<std::uint64_t>(b) << ")";
}

void expectByteIdentical(const EvaluationResult& a, const EvaluationResult& b) {
  EXPECT_EQ(a.benchmark, b.benchmark);
  EXPECT_EQ(a.algorithm, b.algorithm);
  EXPECT_EQ(a.samples, b.samples);
  EXPECT_TRUE(bitEqual(a.meanKpa, b.meanKpa));
  EXPECT_TRUE(bitEqual(a.minKpa, b.minKpa));
  EXPECT_TRUE(bitEqual(a.maxKpa, b.maxKpa));
  EXPECT_TRUE(bitEqual(a.meanKeyBits, b.meanKeyBits));
  EXPECT_TRUE(bitEqual(a.meanBitsUsed, b.meanBitsUsed));
  EXPECT_TRUE(bitEqual(a.meanGlobalMetric, b.meanGlobalMetric));
  EXPECT_TRUE(bitEqual(a.meanRestrictedMetric, b.meanRestrictedMetric));
}

EvaluationConfig smallConfig(int threads) {
  EvaluationConfig config;
  config.testLocks = 4;
  config.snapshot.relockRounds = 10;
  config.snapshot.automl.folds = 2;
  config.threads = threads;
  return config;
}

EvaluationResult runEvaluation(lock::Algorithm algorithm, int threads, std::uint64_t seed) {
  support::Rng rng{seed};
  const auto original = designs::makePlusNetwork(40);
  return evaluateBenchmark(original, "plus40", algorithm, lock::PairTable::fixed(),
                           smallConfig(threads), rng);
}

TEST(DeterminismTest, EvaluateBenchmarkIsThreadCountInvariant) {
  for (const auto algorithm : {lock::Algorithm::AssureSerial, lock::Algorithm::Era}) {
    const EvaluationResult serial = runEvaluation(algorithm, 1, 11);
    const EvaluationResult four = runEvaluation(algorithm, 4, 11);
    const EvaluationResult hardware = runEvaluation(algorithm, 0, 11);
    expectByteIdentical(serial, four);
    expectByteIdentical(serial, hardware);
  }
}

TEST(DeterminismTest, IdenticallySeededSerialRunsMatch) {
  // Substream-convention regression guard: two serial runs from the same
  // seed must agree with themselves (and, transitively, with the sharded
  // runs the previous test pins to the serial path).
  const EvaluationResult first = runEvaluation(lock::Algorithm::Hra, 1, 23);
  const EvaluationResult second = runEvaluation(lock::Algorithm::Hra, 1, 23);
  expectByteIdentical(first, second);
}

TEST(DeterminismTest, EvaluateBenchmarkAdvancesCallerRngByExactlyOneDraw) {
  // The documented contract that makes grid drivers thread-invariant: the
  // caller's stream moves by one fork per call, never by "however many
  // draws the samples consumed".
  support::Rng used{31};
  support::Rng witness{31};
  const auto original = designs::makePlusNetwork(30);
  (void)evaluateBenchmark(original, "plus30", lock::Algorithm::AssureSerial,
                          lock::PairTable::fixed(), smallConfig(2), used);
  (void)witness();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(used(), witness());
}

// --- fig4 scenario grid ----------------------------------------------------

bench::Fig4Observations runScenario(bench::Fig4Scenario scenario, std::uint64_t seed) {
  support::Rng rng{seed};
  return bench::observeFig4(scenario, /*networkSize=*/48, /*testBits=*/24, /*rounds=*/40, rng);
}

std::vector<bench::Fig4Observations> runFig4Grid(int threads) {
  const std::vector<bench::Fig4Scenario> scenarios{bench::Fig4Scenario::SerialSerial,
                                                   bench::Fig4Scenario::RandomRandom,
                                                   bench::Fig4Scenario::SerialDisjoint};
  support::TaskPool pool{threads};
  return pool.map(scenarios.size(),
                  [&](std::size_t index) { return runScenario(scenarios[index], 7 + index); });
}

TEST(DeterminismTest, Fig4ObservationStreamsAreThreadCountInvariant) {
  const auto serial = runFig4Grid(1);
  const auto four = runFig4Grid(4);
  const auto hardware = runFig4Grid(0);
  ASSERT_EQ(serial.size(), 3u);
  // Observation maps hold integer counts keyed by locality codes, so plain
  // equality *is* byte-identity here.
  EXPECT_EQ(serial, four);
  EXPECT_EQ(serial, hardware);
  // And the scenarios genuinely observed something.
  for (const auto& observations : serial) EXPECT_FALSE(observations.empty());
}

TEST(DeterminismTest, Fig4IdenticallySeededRunsMatch) {
  EXPECT_EQ(runScenario(bench::Fig4Scenario::RandomRandom, 99),
            runScenario(bench::Fig4Scenario::RandomRandom, 99));
}

}  // namespace
}  // namespace rtlock::attack
