// Fast canary for the whole build: cheap library-wide invariants that catch
// gross breakage (empty registry, broken Verilog round-trip, dead locking
// path) before the slow suites spend minutes confirming it.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "designs/registry.hpp"
#include "support/config.hpp"
#include "support/rng.hpp"
#include "verilog/parser.hpp"
#include "verilog/writer.hpp"

namespace rtlock {
namespace {

TEST(BuildSanityTest, CompiledUnderCpp20) {
  EXPECT_GE(support::kCompiledCppStandard, support::kRequiredCppStandard);
}

TEST(BuildSanityTest, BenchmarkRegistryIsPopulated) {
  const auto& benchmarks = designs::allBenchmarks();
  ASSERT_FALSE(benchmarks.empty());
  EXPECT_EQ(benchmarks.size(), designs::benchmarkNames().size());
  for (const auto& info : benchmarks) {
    EXPECT_FALSE(info.name.empty());
    EXPECT_NE(info.make, nullptr) << info.name;
  }
}

TEST(BuildSanityTest, EveryRegisteredDesignRoundTripsThroughVerilog) {
  for (const auto& name : designs::benchmarkNames()) {
    SCOPED_TRACE(name);
    const rtl::Module original = designs::makeBenchmark(name);
    const std::string once = verilog::writeModule(original);
    const rtl::Module reparsed = verilog::parseModule(once);
    EXPECT_EQ(once, verilog::writeModule(reparsed));
  }
}

TEST(BuildSanityTest, LockingPathIsAlive) {
  rtl::Module module = designs::makeBenchmark("FIR");
  lock::LockEngine engine{module, lock::PairTable::fixed()};
  ASSERT_GT(engine.initialLockableOps(), 0);
  support::Rng rng{1};
  const auto checkpoint = engine.checkpoint();
  ASSERT_TRUE(engine.lockRandomOp(rng));
  EXPECT_EQ(module.keyWidth(), 1);
  engine.undoTo(checkpoint);
  EXPECT_EQ(module.keyWidth(), 0);
}

}  // namespace
}  // namespace rtlock
