#include "core/assure.hpp"

#include <gtest/gtest.h>

#include "designs/networks.hpp"
#include "rtl/builder.hpp"
#include "rtl/stats.hpp"
#include "sim/harness.hpp"
#include "verilog/parser.hpp"

namespace rtlock::lock {
namespace {

using rtl::OpKind;

TEST(AssureTest, SerialLocksLeadingOpsInOrder) {
  rtl::Module m = designs::makeOperationNetwork("net", {{OpKind::Add, 10}});
  LockEngine engine{m, PairTable::fixed()};
  support::Rng rng{1};
  const auto report = assureSerialLock(engine, 4, rng);
  EXPECT_EQ(report.bitsUsed, 4);
  EXPECT_EQ(report.algorithm, Algorithm::AssureSerial);
  // The first four assigns carry the muxes; the rest stay plain.
  for (int i = 0; i < 10; ++i) {
    const auto& value = m.contAssigns()[static_cast<std::size_t>(i)]->value();
    if (i < 4) {
      EXPECT_EQ(value.kind(), rtl::ExprKind::Ternary) << i;
    } else {
      EXPECT_EQ(value.kind(), rtl::ExprKind::Binary) << i;
    }
  }
}

TEST(AssureTest, SerialRelockExtendsSameOperations) {
  // Fig. 4b: a second serial pass nests new muxes onto the same leading ops.
  rtl::Module m = designs::makeOperationNetwork("net", {{OpKind::Add, 10}});
  LockEngine engine{m, PairTable::fixed()};
  support::Rng rng{2};
  assureSerialLock(engine, 2, rng);
  assureSerialLock(engine, 4, rng);
  // First assign: mux whose branches include a nested mux (relocked pair).
  const auto& first = static_cast<const rtl::TernaryExpr&>(m.contAssigns()[0]->value());
  ASSERT_TRUE(first.isKeyMux());
  const bool thenNested = first.thenExpr().kind() == rtl::ExprKind::Ternary;
  const bool elseNested = first.elseExpr().kind() == rtl::ExprKind::Ternary;
  EXPECT_TRUE(thenNested || elseNested);
}

TEST(AssureTest, RandomLockUsesExactBudget) {
  rtl::Module m = designs::makeOperationNetwork("net", {{OpKind::Add, 30}, {OpKind::Mul, 10}});
  LockEngine engine{m, PairTable::fixed()};
  support::Rng rng{3};
  const auto report = assureRandomLock(engine, 25, rng);
  EXPECT_EQ(report.bitsUsed, 25);
  EXPECT_EQ(m.keyWidth(), 25);
  EXPECT_EQ(rtl::computeStats(m).keyMuxes, 25);
}

TEST(AssureTest, RandomLockSpreadsAcrossKinds) {
  rtl::Module m =
      designs::makeOperationNetwork("net", {{OpKind::Add, 50}, {OpKind::Xor, 50}});
  LockEngine engine{m, PairTable::fixed()};
  support::Rng rng{4};
  assureRandomLock(engine, 60, rng);
  int addLocks = 0;
  int xorLocks = 0;
  for (const auto& record : engine.records()) {
    if (record.realOp == OpKind::Add) ++addLocks;
    if (record.realOp == OpKind::Xor) ++xorLocks;
  }
  EXPECT_GT(addLocks, 10);
  EXPECT_GT(xorLocks, 10);
}

TEST(AssureTest, FunctionalPreservationUnderCorrectKey) {
  rtl::Module original = designs::makeOperationNetwork(
      "net", {{OpKind::Add, 8}, {OpKind::Xor, 4}, {OpKind::Shl, 2}}, 16);
  rtl::Module locked = original.clone();
  LockEngine engine{locked, PairTable::fixed()};
  support::Rng rng{5};
  assureRandomLock(engine, 10, rng);

  sim::BitVector key{locked.keyWidth()};
  for (const auto& record : engine.records()) {
    key.setBit(record.keyIndex, record.keyValue);
  }
  support::Rng simRng{6};
  EXPECT_TRUE(sim::functionallyEquivalent(original, locked, key, {}, simRng));
}

TEST(AssureTest, WrongKeyCorruptsOutputs) {
  rtl::Module original = designs::makeOperationNetwork("net", {{OpKind::Add, 8}}, 16);
  rtl::Module locked = original.clone();
  LockEngine engine{locked, PairTable::fixed()};
  support::Rng rng{7};
  assureRandomLock(engine, 6, rng);

  sim::BitVector wrongKey{locked.keyWidth()};
  for (const auto& record : engine.records()) {
    wrongKey.setBit(record.keyIndex, !record.keyValue);  // flip every bit
  }
  support::Rng simRng{8};
  EXPECT_FALSE(sim::functionallyEquivalent(original, locked, wrongKey, {}, simRng));
}

TEST(AssureTest, ConstantObfuscationExtractsConstants) {
  const auto source = R"(
    module consts (input [7:0] a, output [7:0] y);
      wire [7:0] w;
      assign w = a + 8'hd;
      assign y = w ^ 8'h5a;
    endmodule
  )";
  rtl::Module m = verilog::parseModule(source);
  support::Rng rng{9};
  const auto report = assureLockConstants(m, 64, rng);
  EXPECT_EQ(report.bitsUsed, 16);
  EXPECT_EQ(report.records.size(), 2u);
  EXPECT_EQ(m.keyWidth(), 16);

  // Keyed with the recorded chunks, the module must match the original.
  sim::BitVector key{m.keyWidth()};
  for (const auto& record : report.records) {
    for (int i = 0; i < record.width; ++i) {
      key.setBit(record.keyIndex + i, ((record.value >> i) & 1u) != 0);
    }
  }
  const rtl::Module original = verilog::parseModule(source);
  support::Rng simRng{10};
  EXPECT_TRUE(sim::functionallyEquivalent(original, m, key, {}, simRng));

  // And with a wrong key it must not.
  sim::BitVector wrong = key;
  wrong.setBit(0, !wrong.bit(0));
  support::Rng simRng2{11};
  EXPECT_FALSE(sim::functionallyEquivalent(original, m, wrong, {}, simRng2));
}

TEST(AssureTest, ConstantObfuscationRespectsBudget) {
  const auto source = R"(
    module consts (input [7:0] a, output [7:0] y);
      assign y = a + 8'hd;
    endmodule
  )";
  rtl::Module m = verilog::parseModule(source);
  support::Rng rng{12};
  const auto report = assureLockConstants(m, 4, rng);  // 8-bit constant does not fit
  EXPECT_EQ(report.bitsUsed, 0);
  EXPECT_EQ(m.keyWidth(), 0);
}

TEST(AssureTest, BranchObfuscationPreservesSemantics) {
  const auto source = R"(
    module branchy (input [7:0] a, input [7:0] b, output reg [7:0] y);
      always @(*) begin
        if (a > b) y = a;
        else if (a == b) y = 8'h7f;
        else y = b;
      end
    endmodule
  )";
  rtl::Module m = verilog::parseModule(source);
  support::Rng rng{13};
  const auto report = assureLockBranches(m, 8, rng);
  EXPECT_EQ(report.bitsUsed, 2);

  sim::BitVector key{m.keyWidth()};
  for (const auto& record : report.records) key.setBit(record.keyIndex, record.keyValue);
  const rtl::Module original = verilog::parseModule(source);
  support::Rng simRng{14};
  EXPECT_TRUE(sim::functionallyEquivalent(original, m, key, {}, simRng));

  sim::BitVector wrong = key;
  wrong.setBit(0, !wrong.bit(0));
  support::Rng simRng2{15};
  EXPECT_FALSE(sim::functionallyEquivalent(original, m, wrong, {}, simRng2));
}

TEST(AssureTest, BudgetLargerThanDesignLocksEverythingOnce) {
  rtl::Module m = designs::makeOperationNetwork("net", {{OpKind::Add, 5}});
  LockEngine engine{m, PairTable::fixed()};
  support::Rng rng{16};
  const auto report = assureSerialLock(engine, 100, rng);
  EXPECT_EQ(report.bitsUsed, 5);
}

}  // namespace
}  // namespace rtlock::lock
