#include "core/pairs.hpp"

#include <gtest/gtest.h>

#include <set>

#include "support/diagnostics.hpp"

namespace rtlock::lock {
namespace {

using rtl::OpKind;

TEST(PairsTest, FixedTableIsInvolutive) {
  const PairTable& table = PairTable::fixed();
  EXPECT_TRUE(table.involutive());
  for (int k = 0; k < rtl::kOpKindCount; ++k) {
    const auto kind = static_cast<OpKind>(k);
    if (!table.lockable(kind)) continue;
    const OpKind partner = table.dummyFor(kind);
    EXPECT_NE(partner, kind);
    EXPECT_EQ(table.dummyFor(partner), kind)
        << "pairing of " << rtl::opName(kind) << " is not involutive";
  }
}

TEST(PairsTest, FixedTableExpectedPairs) {
  const PairTable& table = PairTable::fixed();
  EXPECT_EQ(table.dummyFor(OpKind::Add), OpKind::Sub);
  EXPECT_EQ(table.dummyFor(OpKind::Mul), OpKind::Div);
  EXPECT_EQ(table.dummyFor(OpKind::Mod), OpKind::Pow);
  EXPECT_EQ(table.dummyFor(OpKind::Xor), OpKind::Xnor);
  EXPECT_EQ(table.dummyFor(OpKind::Shl), OpKind::Shr);
  EXPECT_EQ(table.dummyFor(OpKind::Lt), OpKind::Ge);
  EXPECT_EQ(table.dummyFor(OpKind::Eq), OpKind::Ne);
}

TEST(PairsTest, ComparisonPairsAreLogicalNegations) {
  // (T, T') chosen so that T' is the boolean negation of T — a semantic
  // property branch locking also relies on.
  const PairTable& table = PairTable::fixed();
  EXPECT_EQ(table.dummyFor(OpKind::Lt), OpKind::Ge);
  EXPECT_EQ(table.dummyFor(OpKind::Gt), OpKind::Le);
  EXPECT_EQ(table.dummyFor(OpKind::Ne), OpKind::Eq);
}

TEST(PairsTest, AShrIsNotLockable) {
  EXPECT_FALSE(PairTable::fixed().lockable(OpKind::AShr));
  EXPECT_THROW((void)PairTable::fixed().dummyFor(OpKind::AShr), support::ContractViolation);
}

TEST(PairsTest, PairIndexConsistent) {
  const PairTable& table = PairTable::fixed();
  std::set<int> indices;
  for (const auto& [a, b] : table.pairs()) {
    const int index = table.pairIndexOf(a);
    EXPECT_EQ(table.pairIndexOf(b), index);
    indices.insert(index);
  }
  EXPECT_EQ(indices.size(), table.pairCount());
  EXPECT_EQ(table.pairIndexOf(OpKind::AShr), -1);
}

TEST(PairsTest, OriginalTableIsLeaky) {
  const PairTable& table = PairTable::assureOriginal();
  EXPECT_FALSE(table.involutive());
  // The paper's example: * is paired with +, but + is paired with -.
  EXPECT_EQ(table.dummyFor(OpKind::Mul), OpKind::Add);
  EXPECT_EQ(table.dummyFor(OpKind::Add), OpKind::Sub);
  // Leakage list from Sec. 3.2: mod, xor, pow, div.
  EXPECT_NE(table.dummyFor(table.dummyFor(OpKind::Mod)), OpKind::Mod);
  EXPECT_NE(table.dummyFor(table.dummyFor(OpKind::Xor)), OpKind::Xor);
  EXPECT_NE(table.dummyFor(table.dummyFor(OpKind::Pow)), OpKind::Pow);
  EXPECT_NE(table.dummyFor(table.dummyFor(OpKind::Div)), OpKind::Div);
}

TEST(PairsTest, OriginalTableHasSymmetricSubset) {
  const PairTable& table = PairTable::assureOriginal();
  // Add/Sub and the comparisons behave symmetrically even in the original.
  EXPECT_EQ(table.dummyFor(table.dummyFor(OpKind::Add)), OpKind::Add);
  EXPECT_EQ(table.dummyFor(table.dummyFor(OpKind::Lt)), OpKind::Lt);
}

TEST(PairsTest, CanonicalPairsUnavailableForLeakyTable) {
  EXPECT_THROW((void)PairTable::assureOriginal().pairs(), support::ContractViolation);
  EXPECT_THROW((void)PairTable::assureOriginal().pairIndexOf(OpKind::Add),
               support::ContractViolation);
}

}  // namespace
}  // namespace rtlock::lock
