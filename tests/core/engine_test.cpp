#include "core/engine.hpp"

#include <gtest/gtest.h>

#include "designs/networks.hpp"
#include "rtl/builder.hpp"
#include "rtl/stats.hpp"
#include "verilog/writer.hpp"

namespace rtlock::lock {
namespace {

using rtl::OpKind;

/// 3 adds, 1 sub, three-address.
rtl::Module smallDesign() {
  rtl::ModuleBuilder b{"small"};
  const auto a = b.input("a", 8);
  const auto c = b.input("b", 8);
  const auto w0 = b.wire("w0", 8);
  const auto w1 = b.wire("w1", 8);
  const auto w2 = b.wire("w2", 8);
  const auto y = b.output("y", 8);
  b.assign(w0, b.add(b.ref(a), b.ref(c)));
  b.assign(w1, b.add(b.ref(w0), b.ref(a)));
  b.assign(w2, b.sub(b.ref(w1), b.ref(c)));
  b.assign(y, b.add(b.ref(w2), b.ref(w0)));
  return b.take();
}

TEST(EngineTest, IndexCountsMatchStats) {
  rtl::Module m = smallDesign();
  LockEngine engine{m, PairTable::fixed()};
  EXPECT_EQ(engine.opCount(OpKind::Add), 3);
  EXPECT_EQ(engine.opCount(OpKind::Sub), 1);
  EXPECT_EQ(engine.totalLockableOps(), 4);
  EXPECT_EQ(engine.initialLockableOps(), 4);
  EXPECT_EQ(engine.odtValue(OpKind::Add), 2);
  EXPECT_EQ(engine.odtValue(OpKind::Sub), -2);
}

TEST(EngineTest, LockAddsDummyAndKeyBit) {
  rtl::Module m = smallDesign();
  LockEngine engine{m, PairTable::fixed()};
  const LockRecord& record = engine.lockOpAt(OpKind::Add, 0, true);
  EXPECT_EQ(record.keyIndex, 0);
  EXPECT_TRUE(record.keyValue);
  EXPECT_EQ(record.realOp, OpKind::Add);
  EXPECT_EQ(record.dummyOp, OpKind::Sub);
  EXPECT_EQ(m.keyWidth(), 1);
  EXPECT_EQ(engine.opCount(OpKind::Add), 3);  // real op still present
  EXPECT_EQ(engine.opCount(OpKind::Sub), 2);  // dummy added
  EXPECT_EQ(engine.odtValue(OpKind::Add), 1);
  EXPECT_EQ(rtl::computeStats(m).keyMuxes, 1);
}

TEST(EngineTest, KeyValueControlsBranchPlacement) {
  // key=1: real op in the true branch; key=0: in the false branch (Fig. 3a).
  for (const bool keyValue : {true, false}) {
    rtl::Module m = smallDesign();
    LockEngine engine{m, PairTable::fixed()};
    engine.lockOpAt(OpKind::Sub, 0, keyValue);
    const auto& mux =
        static_cast<const rtl::TernaryExpr&>(m.contAssigns()[2]->value());
    ASSERT_TRUE(mux.isKeyMux());
    const auto& realBranch = keyValue ? mux.thenExpr() : mux.elseExpr();
    const auto& dummyBranch = keyValue ? mux.elseExpr() : mux.thenExpr();
    EXPECT_EQ(static_cast<const rtl::BinaryExpr&>(realBranch).op(), OpKind::Sub);
    EXPECT_EQ(static_cast<const rtl::BinaryExpr&>(dummyBranch).op(), OpKind::Add);
  }
}

TEST(EngineTest, UndoRestoresStructure) {
  rtl::Module m = smallDesign();
  const rtl::Module reference = m.clone();
  LockEngine engine{m, PairTable::fixed()};
  support::Rng rng{5};

  const auto checkpoint = engine.checkpoint();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(engine.lockRandomOp(rng));
  }
  EXPECT_EQ(m.keyWidth(), 4);
  EXPECT_FALSE(structurallyEqual(m, reference));

  engine.undoTo(checkpoint);
  EXPECT_TRUE(structurallyEqual(m, reference));
  EXPECT_EQ(m.keyWidth(), 0);
  EXPECT_EQ(engine.opCount(OpKind::Add), 3);
  EXPECT_EQ(engine.opCount(OpKind::Sub), 1);
  EXPECT_TRUE(engine.records().empty());
}

TEST(EngineTest, UndoRestoresAfterNestedRelock) {
  rtl::Module m = smallDesign();
  const rtl::Module reference = m.clone();
  LockEngine engine{m, PairTable::fixed()};

  // Lock the same logical op twice (nested mux of Fig. 3b), then a dummy.
  engine.lockOpAt(OpKind::Add, 0, true);
  engine.lockOpAt(OpKind::Add, 0, false);  // relock: wraps the real branch
  engine.lockOpAt(OpKind::Sub, 1, true);   // lock the dummy sub added first
  EXPECT_EQ(m.keyWidth(), 3);

  engine.undoTo(0);
  EXPECT_TRUE(structurallyEqual(m, reference));
}

TEST(EngineTest, RepeatedLockUndoCyclesAreStable) {
  rtl::Module m = designs::makeOperationNetwork(
      "net", {{OpKind::Add, 20}, {OpKind::Mul, 10}, {OpKind::Xor, 5}});
  const rtl::Module reference = m.clone();
  LockEngine engine{m, PairTable::fixed()};
  support::Rng rng{17};

  for (int round = 0; round < 10; ++round) {
    const auto checkpoint = engine.checkpoint();
    for (int i = 0; i < 25; ++i) {
      ASSERT_TRUE(engine.lockRandomOp(rng));
    }
    engine.undoTo(checkpoint);
    ASSERT_TRUE(structurallyEqual(m, reference)) << "round " << round;
  }
}

TEST(EngineTest, LockStepReducesImbalance) {
  rtl::Module m = smallDesign();  // ODT[Add] = +2
  LockEngine engine{m, PairTable::fixed()};
  support::Rng rng{7};
  const int used = engine.lockStep(OpKind::Add, /*pairMode=*/false, rng);
  EXPECT_EQ(used, 1);
  EXPECT_EQ(engine.odtValue(OpKind::Add), 1);
  // Deficient side: locking Sub when ODT[Sub] < 0 must also reduce.
  const int used2 = engine.lockStep(OpKind::Sub, /*pairMode=*/false, rng);
  EXPECT_EQ(used2, 1);
  EXPECT_EQ(engine.odtValue(OpKind::Add), 0);
}

TEST(EngineTest, LockStepPairModePreservesBalance) {
  rtl::Module m = designs::makeOperationNetwork("bal", {{OpKind::Add, 3}, {OpKind::Sub, 3}});
  LockEngine engine{m, PairTable::fixed()};
  support::Rng rng{11};
  const int used = engine.lockStep(OpKind::Add, /*pairMode=*/true, rng);
  EXPECT_EQ(used, 2);
  EXPECT_EQ(engine.odtValue(OpKind::Add), 0);
  EXPECT_EQ(engine.opCount(OpKind::Add), 4);
  EXPECT_EQ(engine.opCount(OpKind::Sub), 4);
}

TEST(EngineTest, LockStepEmptyPairMakesNoProgress) {
  rtl::Module m = designs::makeOperationNetwork("adds", {{OpKind::Add, 4}});
  LockEngine engine{m, PairTable::fixed()};
  support::Rng rng{13};
  EXPECT_EQ(engine.lockStep(OpKind::Mul, false, rng), 0);
}

TEST(EngineTest, TouchedPairsTracked) {
  rtl::Module m = smallDesign();
  LockEngine engine{m, PairTable::fixed()};
  const auto& table = PairTable::fixed();
  EXPECT_FALSE(engine.touchedPairs()[static_cast<std::size_t>(table.pairIndexOf(OpKind::Add))]);
  engine.lockOpAt(OpKind::Add, 0, true);
  EXPECT_TRUE(engine.touchedPairs()[static_cast<std::size_t>(table.pairIndexOf(OpKind::Add))]);
  engine.undoTo(0);
  EXPECT_FALSE(engine.touchedPairs()[static_cast<std::size_t>(table.pairIndexOf(OpKind::Add))]);
}

TEST(EngineTest, MetricsTrackBalancing) {
  rtl::Module m = smallDesign();
  LockEngine engine{m, PairTable::fixed()};
  support::Rng rng{19};
  EXPECT_DOUBLE_EQ(engine.globalMetric(), 0.0);
  engine.lockStep(OpKind::Add, false, rng);
  engine.lockStep(OpKind::Add, false, rng);
  EXPECT_DOUBLE_EQ(engine.globalMetric(), 100.0);
  EXPECT_DOUBLE_EQ(engine.restrictedMetric(), 100.0);
}

TEST(EngineTest, SerialOrderCoversAllOps) {
  rtl::Module m = smallDesign();
  LockEngine engine{m, PairTable::fixed()};
  const auto order = engine.opsInTraversalOrder();
  EXPECT_EQ(order.size(), 4u);
  // Traversal follows assign order: add, add, sub, add.
  EXPECT_EQ(order[0].first, OpKind::Add);
  EXPECT_EQ(order[2].first, OpKind::Sub);
}

TEST(EngineTest, LockedModuleStillEmitsValidVerilog) {
  rtl::Module m = smallDesign();
  LockEngine engine{m, PairTable::fixed()};
  support::Rng rng{23};
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(engine.lockRandomOp(rng));
  const std::string text = verilog::writeModule(m);
  EXPECT_NE(text.find("lock_key"), std::string::npos);
}

TEST(EngineTest, LeakyTableLocksWithDirectedDummies) {
  rtl::Module m = designs::makeOperationNetwork("mulnet", {{OpKind::Mul, 3}});
  LockEngine engine{m, PairTable::assureOriginal()};
  engine.lockOpAt(OpKind::Mul, 0, true);
  const auto& record = engine.records().back();
  EXPECT_EQ(record.dummyOp, OpKind::Add);  // (*, +) per the original table
}

TEST(EngineTest, UndoToFutureCheckpointThrows) {
  rtl::Module m = smallDesign();
  LockEngine engine{m, PairTable::fixed()};
  EXPECT_THROW(engine.undoTo(1), support::ContractViolation);
}

TEST(EngineTest, FuzzedLockUndoInterleavingsRoundTripToRtlEqualModule) {
  // Property test for the undo stack the attack's relock loop leans on:
  // any interleaving of random locks, targeted locks, checkpoints, and
  // partial rollbacks must round-trip to an RTL-equal module once fully
  // undone — checked both structurally and on the emitted Verilog, which
  // also covers key-input bookkeeping the structural walk abstracts over.
  support::Rng rng{101};
  for (int trial = 0; trial < 10; ++trial) {
    rtl::Module m = designs::makeOperationNetwork(
        "fuzz", {{OpKind::Add, 12}, {OpKind::Sub, 6}, {OpKind::Mul, 8}, {OpKind::Xor, 5}});
    const rtl::Module reference = m.clone();
    const std::string referenceText = verilog::writeModule(reference);
    LockEngine engine{m, PairTable::fixed()};

    std::vector<std::size_t> checkpoints{engine.checkpoint()};
    for (int step = 0; step < 80; ++step) {
      switch (rng.below(5)) {
        case 0:
        case 1:
          ASSERT_TRUE(engine.lockRandomOp(rng));
          break;
        case 2: {
          // Targeted (re)lock through the same coordinates the serial
          // ASSURE policy uses, including already-locked and dummy ops.
          const auto ops = engine.opsInTraversalOrder();
          ASSERT_FALSE(ops.empty());
          const auto& [kind, position] = ops[static_cast<std::size_t>(rng.below(ops.size()))];
          engine.lockOpAt(kind, position, rng.coin());
          break;
        }
        case 3:
          checkpoints.push_back(engine.checkpoint());
          break;
        case 4: {
          // Roll back to a random earlier checkpoint; later checkpoints
          // become stale and are dropped.
          const auto target = static_cast<std::size_t>(rng.below(checkpoints.size()));
          engine.undoTo(checkpoints[target]);
          checkpoints.resize(target + 1);
          break;
        }
      }
    }

    engine.undoAll();
    EXPECT_TRUE(structurallyEqual(m, reference)) << "trial " << trial;
    EXPECT_EQ(verilog::writeModule(m), referenceText) << "trial " << trial;
    EXPECT_EQ(m.keyWidth(), 0) << "trial " << trial;
    EXPECT_TRUE(engine.records().empty()) << "trial " << trial;
    EXPECT_EQ(engine.totalLockableOps(), engine.initialLockableOps()) << "trial " << trial;
  }
}

TEST(EngineTest, RepeatedLockUndoCyclesAreStructurallyIdempotent) {
  // The engine recycles detached mux shells across lock/undo cycles (leaf
  // operands); the rebuilt module must be byte-identical to a fresh build,
  // orientation flips included.
  rtl::Module reference = smallDesign();
  LockEngine referenceEngine{reference, PairTable::fixed()};
  referenceEngine.lockOpAt(OpKind::Add, 0, false);
  const std::string referenceText = verilog::writeModule(reference);
  referenceEngine.undoAll();

  rtl::Module m = smallDesign();
  LockEngine engine{m, PairTable::fixed()};
  for (int cycle = 0; cycle < 5; ++cycle) {
    // Alternate key values so the recycled shell must re-orient its dummy
    // branch between then/else slots.
    engine.lockOpAt(OpKind::Add, 0, cycle % 2 == 0);
    if (cycle % 2 == 1) {
      EXPECT_EQ(verilog::writeModule(m), referenceText) << cycle;
    }
    engine.undoAll();
    EXPECT_TRUE(structurallyEqual(m, smallDesign())) << cycle;
    EXPECT_EQ(m.keyWidth(), 0) << cycle;
  }
}

TEST(EngineTest, ShellRecyclingKeepsNestedOperandsCorrect) {
  // Non-leaf operands are not recyclable: the dummy must be a fresh clone of
  // the operand subtree every time, including after the subtree changed.
  rtl::ModuleBuilder b{"nested"};
  const auto a = b.input("a", 8);
  const auto y = b.output("y", 8);
  b.assign(y, b.add(b.add(b.ref(a), b.lit(1, 8)), b.ref(a)));
  rtl::Module m = b.take();
  LockEngine engine{m, PairTable::fixed()};
  ASSERT_EQ(engine.opCount(OpKind::Add), 2);

  std::string lockedText;
  for (int cycle = 0; cycle < 3; ++cycle) {
    const std::size_t checkpoint = engine.checkpoint();
    // Lock the outer op: the dummy is a fresh clone of the nested operand
    // subtree (one Sub dummy root + one cloned inner Add), identical every
    // cycle.
    engine.lockOpAt(OpKind::Add, 0, true);
    EXPECT_EQ(engine.opCount(OpKind::Sub), 1) << cycle;
    EXPECT_EQ(engine.opCount(OpKind::Add), 3) << cycle;
    const std::string text = verilog::writeModule(m);
    if (cycle == 0) {
      lockedText = text;
    } else {
      EXPECT_EQ(text, lockedText) << cycle;
    }
    engine.undoTo(checkpoint);
    EXPECT_EQ(engine.opCount(OpKind::Sub), 0) << cycle;
    EXPECT_EQ(engine.opCount(OpKind::Add), 2) << cycle;
  }
  EXPECT_TRUE(rtl::computeStats(m).keyMuxes == 0);
}

}  // namespace
}  // namespace rtlock::lock
