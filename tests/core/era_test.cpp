#include "core/era.hpp"

#include <gtest/gtest.h>

#include "designs/networks.hpp"
#include "designs/registry.hpp"
#include "sim/harness.hpp"

namespace rtlock::lock {
namespace {

using rtl::OpKind;

TEST(EraTest, BalancesTouchedPairs) {
  rtl::Module m =
      designs::makeOperationNetwork("net", {{OpKind::Add, 12}, {OpKind::Sub, 4}});
  LockEngine engine{m, PairTable::fixed()};
  support::Rng rng{1};
  const auto report = eraLock(engine, 6, rng);
  EXPECT_EQ(report.algorithm, Algorithm::Era);
  // ERA's invariant: every touched pair is perfectly balanced.
  EXPECT_DOUBLE_EQ(report.finalRestrictedMetric, 100.0);
  EXPECT_DOUBLE_EQ(engine.restrictedMetric(), 100.0);
}

TEST(EraTest, MayExceedKeyBudgetForSecurity) {
  // ODT[Add] = +12 - 0: balancing the pair needs 12 bits even though the
  // budget allows 4 ("ERA prioritizes security over cost").
  rtl::Module m = designs::makeOperationNetwork("net", {{OpKind::Add, 12}});
  LockEngine engine{m, PairTable::fixed()};
  support::Rng rng{2};
  const auto report = eraLock(engine, 4, rng);
  EXPECT_GE(report.bitsUsed, 12);
  EXPECT_DOUBLE_EQ(report.finalRestrictedMetric, 100.0);
}

TEST(EraTest, FullyImbalancedNeedsFullBudget) {
  // The paper's N_2046 observation, scaled down: a pure '+' network of n ops
  // consumes >= n key bits under ERA.
  rtl::Module m = designs::makePlusNetwork(64);
  LockEngine engine{m, PairTable::fixed()};
  support::Rng rng{3};
  const auto report = eraLock(engine, static_cast<int>(64 * 0.75), rng);
  EXPECT_GE(report.bitsUsed, 64);
  EXPECT_DOUBLE_EQ(engine.odtValue(OpKind::Add), 0);
}

TEST(EraTest, BalancedDesignStillConsumesBudget) {
  // Documented deviation: on a balanced design the inner loop never fires;
  // balanced 2-bit locks keep the run progressing to the budget.
  rtl::Module m =
      designs::makeOperationNetwork("bal", {{OpKind::Add, 16}, {OpKind::Sub, 16}});
  LockEngine engine{m, PairTable::fixed()};
  support::Rng rng{4};
  const auto report = eraLock(engine, 24, rng);
  EXPECT_GE(report.bitsUsed, 24);
  EXPECT_DOUBLE_EQ(report.finalRestrictedMetric, 100.0);
  EXPECT_DOUBLE_EQ(report.finalGlobalMetric, 100.0);
}

TEST(EraTest, RestrictedMetricHundredDoesNotImplyGlobal) {
  // Two pairs; ERA may balance only the touched one.  M^r = 100 while
  // M^g < 100 exposes the remaining exploitability (Sec. 4.2).
  rtl::Module m = designs::makeOperationNetwork(
      "mixed", {{OpKind::Add, 40}, {OpKind::Mul, 11}, {OpKind::Div, 1}});
  // Budget so small that ERA stops after one pair selection round.
  LockEngine engine{m, PairTable::fixed()};
  support::Rng rng{6};
  const auto report = eraLock(engine, 1, rng);
  EXPECT_DOUBLE_EQ(report.finalRestrictedMetric, 100.0);
}

TEST(EraTest, MetricTraceIsMonotoneNonDecreasing) {
  rtl::Module m = designs::makeOperationNetwork(
      "mono", {{OpKind::Add, 25}, {OpKind::Shl, 10}});
  LockEngine engine{m, PairTable::fixed()};
  support::Rng rng{7};
  const auto report = eraLock(engine, 40, rng);
  double previous = -1.0;
  for (const auto& [bits, metric] : report.metricTrace) {
    EXPECT_GE(metric, previous - 1e-9);
    previous = metric;
  }
}

TEST(EraTest, LockedDesignFunctionallyCorrect) {
  rtl::Module original = designs::makeOperationNetwork(
      "f", {{OpKind::Add, 10}, {OpKind::Xor, 6}, {OpKind::And, 4}}, 16);
  rtl::Module locked = original.clone();
  LockEngine engine{locked, PairTable::fixed()};
  support::Rng rng{8};
  eraLock(engine, 15, rng);

  sim::BitVector key{locked.keyWidth()};
  for (const auto& record : engine.records()) key.setBit(record.keyIndex, record.keyValue);
  support::Rng simRng{9};
  EXPECT_TRUE(sim::functionallyEquivalent(original, locked, key, {}, simRng));
}

TEST(EraTest, NothingLockableReturnsZeroBits) {
  // AShr has no locking pair; a design with only >>> cannot be locked.
  rtl::Module m = designs::makeOperationNetwork("ashr", {{OpKind::AShr, 5}});
  LockEngine engine{m, PairTable::fixed()};
  support::Rng rng{10};
  const auto report = eraLock(engine, 10, rng);
  EXPECT_EQ(report.bitsUsed, 0);
}

}  // namespace
}  // namespace rtlock::lock
