#include "core/hra.hpp"

#include <gtest/gtest.h>

#include "designs/networks.hpp"
#include "sim/harness.hpp"

namespace rtlock::lock {
namespace {

using rtl::OpKind;

rtl::Module fig5Design() {
  // |ODT[(+,-)]| = 25, |ODT[(<<,>>)]| = 10, as in Sec. 4.4 / Fig. 5.
  return designs::makeOperationNetwork("fig5", {{OpKind::Add, 25}, {OpKind::Shl, 10}});
}

TEST(HraTest, RespectsKeyBudget) {
  rtl::Module m = fig5Design();
  LockEngine engine{m, PairTable::fixed()};
  support::Rng rng{1};
  const auto report = hraLock(engine, 20, rng);
  EXPECT_EQ(report.algorithm, Algorithm::Hra);
  // HRA "uses the exact key budget" — pair-mode steps cost 2 bits, so it may
  // run exactly one bit over, never more.
  EXPECT_GE(report.bitsUsed, 20);
  EXPECT_LE(report.bitsUsed, 21);
}

TEST(HraTest, GlobalMetricNeverDecreases) {
  rtl::Module m = fig5Design();
  LockEngine engine{m, PairTable::fixed()};
  support::Rng rng{2};
  const auto report = hraLock(engine, 40, rng);
  double previous = -1.0;
  for (const auto& [bits, metric] : report.metricTrace) {
    EXPECT_GE(metric, previous - 1e-9) << "at " << bits << " bits";
    previous = metric;
  }
}

TEST(HraTest, SufficientBudgetReachesFullSecurity) {
  rtl::Module m = fig5Design();
  LockEngine engine{m, PairTable::fixed()};
  support::Rng rng{3};
  // 25 + 10 = 35 single-bit balancing moves reach the secure point; random
  // pair-mode steps cost extra, so give slack.
  const auto report = hraLock(engine, 120, rng);
  EXPECT_DOUBLE_EQ(report.finalGlobalMetric, 100.0);
}

TEST(HraTest, GreedyReachesSecurityWithFewerBits) {
  // Sec. 4.4: the greedy variant reaches metric 100 with the fewest bits
  // (35 for the Fig. 5 design); HRA's random pair-mode steps cost more.
  support::Rng rngGreedy{4};
  rtl::Module mGreedy = fig5Design();
  LockEngine engineGreedy{mGreedy, PairTable::fixed()};
  const auto greedy = greedyLock(engineGreedy, 200, rngGreedy);

  int greedyBitsToSecure = greedy.bitsUsed;
  for (const auto& [bits, metric] : greedy.metricTrace) {
    if (metric >= 100.0) {
      greedyBitsToSecure = bits;
      break;
    }
  }
  EXPECT_EQ(greedyBitsToSecure, 35);

  // HRA (averaged over seeds) takes at least as long.
  double hraAverage = 0.0;
  const int seeds = 5;
  for (int seed = 0; seed < seeds; ++seed) {
    support::Rng rng{100 + static_cast<std::uint64_t>(seed)};
    rtl::Module m = fig5Design();
    LockEngine engine{m, PairTable::fixed()};
    const auto report = hraLock(engine, 200, rng);
    int bitsToSecure = report.bitsUsed;
    for (const auto& [bits, metric] : report.metricTrace) {
      if (metric >= 100.0) {
        bitsToSecure = bits;
        break;
      }
    }
    hraAverage += bitsToSecure;
  }
  hraAverage /= seeds;
  EXPECT_GE(hraAverage, 35.0);
}

TEST(HraTest, GreedyAttacksLargestImbalanceFirst) {
  rtl::Module m = fig5Design();
  LockEngine engine{m, PairTable::fixed()};
  support::Rng rng{5};
  greedyLock(engine, 10, rng);
  // All ten bits must go to the (+,-) pair (|ODT| 25 vs 10): steepest ascent.
  EXPECT_EQ(engine.odtValue(OpKind::Add), 15);
  EXPECT_EQ(engine.odtValue(OpKind::Shl), 10);
}

TEST(HraTest, BalancedDesignStaysBalanced) {
  rtl::Module m =
      designs::makeOperationNetwork("bal", {{OpKind::Add, 10}, {OpKind::Sub, 10}});
  LockEngine engine{m, PairTable::fixed()};
  support::Rng rng{6};
  const auto report = hraLock(engine, 16, rng);
  EXPECT_DOUBLE_EQ(report.finalGlobalMetric, 100.0);
  EXPECT_EQ(engine.odtValue(OpKind::Add), 0);
}

TEST(HraTest, FunctionalPreservationUnderCorrectKey) {
  rtl::Module original = designs::makeOperationNetwork(
      "f", {{OpKind::Add, 12}, {OpKind::Mul, 6}, {OpKind::Or, 4}}, 16);
  rtl::Module locked = original.clone();
  LockEngine engine{locked, PairTable::fixed()};
  support::Rng rng{7};
  hraLock(engine, 16, rng);

  sim::BitVector key{locked.keyWidth()};
  for (const auto& record : engine.records()) key.setBit(record.keyIndex, record.keyValue);
  support::Rng simRng{8};
  EXPECT_TRUE(sim::functionallyEquivalent(original, locked, key, {}, simRng));
}

TEST(HraTest, NothingLockableTerminates) {
  rtl::Module m = designs::makeOperationNetwork("ashr", {{OpKind::AShr, 4}});
  LockEngine engine{m, PairTable::fixed()};
  support::Rng rng{9};
  const auto report = hraLock(engine, 8, rng);
  EXPECT_EQ(report.bitsUsed, 0);
}

}  // namespace
}  // namespace rtlock::lock
