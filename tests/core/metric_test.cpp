#include "core/metric.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/diagnostics.hpp"

namespace rtlock::lock {
namespace {

TEST(MetricTest, ModifiedEuclideanBasics) {
  const std::vector<int> v{3, 4};
  EXPECT_DOUBLE_EQ(modifiedEuclidean(v, PairMask{true, true}), 5.0);
  EXPECT_DOUBLE_EQ(modifiedEuclidean(v, PairMask{true, false}), 3.0);
  EXPECT_DOUBLE_EQ(modifiedEuclidean(v, PairMask{false, false}), 0.0);
}

TEST(MetricTest, MaskLengthMismatchThrows) {
  const std::vector<int> v{1, 2};
  EXPECT_THROW((void)modifiedEuclidean(v, PairMask{true}), support::ContractViolation);
}

TEST(MetricTest, FullyBalancedScoresHundred) {
  const std::vector<int> initial{25, 10};
  const std::vector<int> balanced{0, 0};
  EXPECT_DOUBLE_EQ(globalSecurityMetric(initial, balanced), 100.0);
}

TEST(MetricTest, UnchangedDesignScoresZero) {
  const std::vector<int> initial{25, 10};
  EXPECT_DOUBLE_EQ(globalSecurityMetric(initial, initial), 0.0);
}

TEST(MetricTest, PaperExampleIntermediateValues) {
  // |ODT| = {25, 10} as in Fig. 5; halving the large pair moves the metric
  // by the Euclidean ratio.
  const std::vector<int> initial{25, 10};
  const std::vector<int> current{12, 10};
  const double expected =
      100.0 * (1.0 - std::sqrt(12.0 * 12 + 10 * 10) / std::sqrt(25.0 * 25 + 10 * 10));
  EXPECT_NEAR(globalSecurityMetric(initial, current), expected, 1e-9);
}

TEST(MetricTest, MonotoneInEachCoordinate) {
  const std::vector<int> initial{25, 10};
  double previous = -1.0;
  for (int x = 25; x >= 0; --x) {
    const std::vector<int> current{x, 10};
    const double metric = globalSecurityMetric(initial, current);
    EXPECT_GT(metric, previous);
    previous = metric;
  }
}

TEST(MetricTest, BalancedInitialDesignDegenerateCases) {
  const std::vector<int> zeros{0, 0};
  EXPECT_DOUBLE_EQ(globalSecurityMetric(zeros, zeros), 100.0);
  const std::vector<int> worse{1, 0};
  EXPECT_DOUBLE_EQ(globalSecurityMetric(zeros, worse), 0.0);
}

TEST(MetricTest, ClampedToZeroWhenWorseThanInitial) {
  const std::vector<int> initial{2, 0};
  const std::vector<int> worse{5, 5};
  EXPECT_DOUBLE_EQ(globalSecurityMetric(initial, worse), 0.0);
}

TEST(MetricTest, RestrictedMaskIgnoresUntouchedPairs) {
  // Pair 0 untouched ('x'), pair 1 balanced: restricted metric is 100 even
  // though pair 0 stays imbalanced.
  const std::vector<int> initial{25, 10};
  const std::vector<int> current{25, 0};
  const PairMask touchedOnlySecond{false, true};
  EXPECT_DOUBLE_EQ(securityMetric(initial, current, touchedOnlySecond), 100.0);
  EXPECT_LT(globalSecurityMetric(initial, current), 100.0);
}

TEST(MetricTest, RestrictedEqualsGlobalWhenAllTouched) {
  const std::vector<int> initial{25, 10};
  const std::vector<int> current{5, 5};
  const PairMask all{true, true};
  EXPECT_DOUBLE_EQ(securityMetric(initial, current, all),
                   globalSecurityMetric(initial, current));
}

TEST(MetricTest, MetricWithinBounds) {
  const std::vector<int> initial{7, 3, 11};
  for (int a = 0; a <= 7; ++a) {
    for (int b = 0; b <= 3; ++b) {
      const std::vector<int> current{a, b, 11};
      const double metric = globalSecurityMetric(initial, current);
      EXPECT_GE(metric, 0.0);
      EXPECT_LE(metric, 100.0);
    }
  }
}

}  // namespace
}  // namespace rtlock::lock
