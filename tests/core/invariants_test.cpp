// Paper-theorem property sweeps (Sec. 4.1/4.2): relations between the two
// metrics, ODT behaviour under Lock, and algorithm invariants, checked
// across many random designs and seeds.
#include <gtest/gtest.h>

#include "core/algorithms.hpp"
#include "designs/networks.hpp"
#include "designs/random.hpp"

namespace rtlock::lock {
namespace {

using rtl::OpKind;

class InvariantSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InvariantSweep, GlobalHundredImpliesRestrictedHundred) {
  // Sec. 4.1: "if M^g_sec = 100 then M^r_sec = 100".
  support::Rng rng{GetParam()};
  rtl::Module m = designs::makeRandomModule(rng);
  LockEngine engine{m, PairTable::fixed()};
  if (engine.initialLockableOps() == 0) return;
  eraLock(engine, engine.initialLockableOps() * 2, rng);
  if (engine.globalMetric() == 100.0) {
    EXPECT_DOUBLE_EQ(engine.restrictedMetric(), 100.0);
  }
}

TEST_P(InvariantSweep, RestrictedEqualsGlobalWhenAllPairsTouched) {
  // Sec. 4.1: "if all types in ODT are affected by locking, M^r == M^g".
  support::Rng rng{GetParam() + 50};
  rtl::Module m = designs::makeRandomModule(rng);
  LockEngine engine{m, PairTable::fixed()};
  if (engine.initialLockableOps() == 0) return;
  assureRandomLock(engine, engine.initialLockableOps(), rng);

  bool allPresentTouched = true;
  const auto& pairs = engine.pairTable().pairs();
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const bool present =
        engine.opCount(pairs[i].first) + engine.opCount(pairs[i].second) > 0;
    if (present && !engine.touchedPairs()[i]) allPresentTouched = false;
  }
  if (allPresentTouched) {
    // Untouched absent pairs have |ODT| = 0 and do not affect either metric.
    EXPECT_NEAR(engine.restrictedMetric(), engine.globalMetric(), 1e-9);
  }
}

TEST_P(InvariantSweep, LockStepNeverIncreasesImbalance) {
  support::Rng rng{GetParam() + 100};
  rtl::Module m = designs::makeRandomModule(rng);
  LockEngine engine{m, PairTable::fixed()};
  const auto& pairs = engine.pairTable().pairs();
  for (int step = 0; step < 30; ++step) {
    const auto& pair = pairs[rng.below(pairs.size())];
    const OpKind type = rng.coin() ? pair.first : pair.second;
    const int before = std::abs(engine.odtValue(type));
    if (engine.lockStep(type, /*pairMode=*/false, rng) == 0) continue;
    EXPECT_LE(std::abs(engine.odtValue(type)), std::max(before, 1))
        << "lockStep increased |ODT| beyond the documented bound";
    // Non-pair-mode on an imbalanced pair strictly reduces.
    if (before > 0) {
      EXPECT_LT(std::abs(engine.odtValue(type)), before + 1);
    }
  }
}

TEST_P(InvariantSweep, EraRestrictedInvariantAfterEveryRound) {
  support::Rng rng{GetParam() + 200};
  rtl::Module m = designs::makeRandomModule(rng);
  LockEngine engine{m, PairTable::fixed()};
  if (engine.initialLockableOps() == 0) return;
  eraLock(engine, std::max(1, engine.initialLockableOps() / 3), rng);
  EXPECT_DOUBLE_EQ(engine.restrictedMetric(), 100.0);
}

TEST_P(InvariantSweep, RecordsMatchKeyWidth) {
  support::Rng rng{GetParam() + 300};
  rtl::Module m = designs::makeRandomModule(rng);
  LockEngine engine{m, PairTable::fixed()};
  if (engine.initialLockableOps() == 0) return;
  hraLock(engine, engine.initialLockableOps() / 2, rng);
  EXPECT_EQ(static_cast<int>(engine.records().size()), m.keyWidth());
  // Key indices are a permutation of [0, keyWidth).
  std::vector<bool> seen(static_cast<std::size_t>(m.keyWidth()), false);
  for (const auto& record : engine.records()) {
    ASSERT_GE(record.keyIndex, 0);
    ASSERT_LT(record.keyIndex, m.keyWidth());
    EXPECT_FALSE(seen[static_cast<std::size_t>(record.keyIndex)]);
    seen[static_cast<std::size_t>(record.keyIndex)] = true;
  }
}

TEST_P(InvariantSweep, DummyOpsMatchPairTable) {
  support::Rng rng{GetParam() + 400};
  rtl::Module m = designs::makeRandomModule(rng);
  LockEngine engine{m, PairTable::fixed()};
  if (engine.initialLockableOps() == 0) return;
  assureRandomLock(engine, engine.initialLockableOps() / 2, rng);
  for (const auto& record : engine.records()) {
    EXPECT_EQ(record.dummyOp, PairTable::fixed().dummyFor(record.realOp));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InvariantSweep,
                         ::testing::Values(7, 17, 27, 37, 47, 57, 67, 77, 87, 97));

TEST(InvariantTest, MetricMonotoneAlongGreedyTrace) {
  // Greedy is HRA with the random component removed: its M^g trace must be
  // strictly non-decreasing and reach 100 exactly at the total imbalance.
  rtl::Module m = designs::makeOperationNetwork(
      "g", {{OpKind::Add, 12}, {OpKind::Mul, 7}, {OpKind::Xor, 3}});
  LockEngine engine{m, PairTable::fixed()};
  support::Rng rng{5};
  const auto report = greedyLock(engine, 200, rng);
  double previous = -1.0;
  int bitsToSecure = -1;
  for (const auto& [bits, metric] : report.metricTrace) {
    EXPECT_GE(metric, previous - 1e-12);
    previous = metric;
    if (metric >= 100.0 && bitsToSecure < 0) bitsToSecure = bits;
  }
  EXPECT_EQ(bitsToSecure, 12 + 7 + 3);
}

}  // namespace
}  // namespace rtlock::lock
