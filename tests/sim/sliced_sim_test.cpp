// Differential fuzz suite for the bit-sliced backend: every lane of a
// SlicedSim batch must be bit-identical with the reference interpreter (and,
// through it, the scalar tape) on registry designs, locked registry designs
// with per-lane hypothesis keys, random fuzz modules, and targeted edges —
// lane counts 1/63/64/65, mixed-width concat/slice shapes, predicated
// (if-converted) case/slice stores, and the per-lane arithmetic fallback.
#include "sim/sliced_sim.hpp"

#include <gtest/gtest.h>

#include "core/assure.hpp"
#include "designs/random.hpp"
#include "designs/registry.hpp"
#include "rtl/builder.hpp"
#include "sim/compiler.hpp"
#include "sim/evaluator.hpp"

namespace rtlock::sim {
namespace {

TEST(Transpose64Test, PlainTransposeOrientation) {
  // out[i] bit j == in[j] bit i, pinned on single-bit matrices.
  for (const auto& [row, bit] : {std::pair{0, 0}, {0, 63}, {63, 0}, {17, 42}, {1, 2}}) {
    std::uint64_t m[64] = {};
    m[row] = std::uint64_t{1} << bit;
    detail::transpose64(m);
    for (int i = 0; i < 64; ++i) {
      EXPECT_EQ(m[i], i == bit ? std::uint64_t{1} << row : 0) << "row " << row << " bit " << bit;
    }
  }
}

TEST(Transpose64Test, RoundTripsRandomMatrices) {
  support::Rng rng{3};
  std::uint64_t m[64];
  std::uint64_t copy[64];
  for (int i = 0; i < 64; ++i) copy[i] = m[i] = rng();
  detail::transpose64(m);
  detail::transpose64(m);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(m[i], copy[i]);
}

/// Drives `lanes` interpreter instances and one SlicedSim with identical
/// per-lane random stimuli (and per-lane random keys when requested) and
/// compares EVERY signal in every lane after every settle and clock edge.
void expectLanesAgree(const rtl::Module& module, int lanes, int cycles, std::uint64_t seed,
                      bool randomKeys = false) {
  SlicedSim sliced{module};
  std::vector<Evaluator> refs;
  refs.reserve(static_cast<std::size_t>(lanes));
  for (int l = 0; l < lanes; ++l) refs.emplace_back(module);
  support::Rng rng{seed};

  std::vector<rtl::SignalId> inputs;
  for (const rtl::SignalId id : module.ports()) {
    if (module.signal(id).dir == rtl::PortDir::Input) inputs.push_back(id);
  }
  const auto& clocks = refs.front().clocks();
  EXPECT_EQ(clocks, sliced.clocks());

  const auto compareAll = [&](int cycle, const char* phase) {
    for (rtl::SignalId id = 0; id < module.signalCount(); ++id) {
      for (int l = 0; l < lanes; ++l) {
        ASSERT_EQ(refs[static_cast<std::size_t>(l)].value(id), sliced.laneValue(id, l))
            << module.name() << " signal '" << module.signal(id).name << "' lane " << l
            << " cycle " << cycle << " after " << phase;
      }
    }
  };

  sliced.reset();
  for (auto& ref : refs) ref.reset();
  if (randomKeys && module.keyWidth() > 0) {
    std::vector<BitVector> keys;
    for (int l = 0; l < lanes; ++l) keys.push_back(BitVector::random(module.keyWidth(), rng));
    sliced.setKeys(keys);
    for (int l = 0; l < lanes; ++l) {
      refs[static_cast<std::size_t>(l)].setKey(keys[static_cast<std::size_t>(l)]);
    }
  }
  for (int cycle = 0; cycle < cycles; ++cycle) {
    for (const rtl::SignalId input : inputs) {
      std::vector<BitVector> stimuli;
      for (int l = 0; l < lanes; ++l) {
        stimuli.push_back(BitVector::random(module.signal(input).width, rng));
      }
      sliced.setLaneValues(input, stimuli);
      for (int l = 0; l < lanes; ++l) {
        refs[static_cast<std::size_t>(l)].setValue(input, stimuli[static_cast<std::size_t>(l)]);
      }
    }
    sliced.settle();
    for (auto& ref : refs) ref.settle();
    compareAll(cycle, "settle");
    for (const rtl::SignalId clock : clocks) {
      sliced.clockEdge(clock);
      for (auto& ref : refs) ref.clockEdge(clock);
      compareAll(cycle, "clock edge");
    }
  }
}

TEST(SlicedSimDifferentialTest, EveryRegistryDesignMatchesInterpreter) {
  for (const auto& name : designs::benchmarkNames()) {
    SCOPED_TRACE(name);
    const rtl::Module module = designs::makeBenchmark(name);
    expectLanesAgree(module, /*lanes=*/8, /*cycles=*/4, /*seed=*/1);
  }
}

TEST(SlicedSimDifferentialTest, LockedRegistryDesignsMatchUnderPerLaneKeys) {
  support::Rng lockRng{7};
  for (const auto& name : designs::benchmarkNames()) {
    SCOPED_TRACE(name);
    rtl::Module module = designs::makeBenchmark(name);
    lock::LockEngine engine{module, lock::PairTable::fixed()};
    const int budget = std::max(1, engine.initialLockableOps() / 2);
    lock::assureRandomLock(engine, budget, lockRng);
    ASSERT_GT(module.keyWidth(), 0);
    // 64 lanes = 64 distinct hypothesis keys through one tape pass.
    expectLanesAgree(module, /*lanes=*/64, /*cycles=*/3, /*seed=*/2, /*randomKeys=*/true);
  }
}

TEST(SlicedSimDifferentialTest, RandomFuzzModulesMatchInterpreter) {
  support::Rng makeRng{31};
  for (int round = 0; round < 25; ++round) {
    SCOPED_TRACE(round);
    designs::RandomModuleParams params;
    params.maxWidth = round % 2 == 0 ? 16 : 64;  // wide rounds stress 64-bit edges
    const rtl::Module module = designs::makeRandomModule(makeRng, params);
    expectLanesAgree(module, /*lanes=*/round % 2 == 0 ? 64 : 7, /*cycles=*/3,
                     /*seed=*/100 + static_cast<std::uint64_t>(round));
  }
}

// ---- targeted edges ------------------------------------------------------

template <typename... Parts>
std::vector<rtl::ExprPtr> parts(Parts&&... items) {
  std::vector<rtl::ExprPtr> out;
  (out.push_back(std::forward<Parts>(items)), ...);
  return out;
}

/// All the lane-fallback ops at once: mul, div/mod (with zero divisors in
/// some lanes), pow, and variable-amount shifts.
rtl::Module makeFallbackMix(int width) {
  rtl::ModuleBuilder b{"fallback_" + std::to_string(width)};
  const auto a = b.input("a", width);
  const auto c = b.input("b", width);
  const auto amt = b.input("amt", 7);  // amounts beyond the width zero the result
  const auto y = b.output("y", width);
  const auto z = b.output("z", width);
  b.assign(y, b.xorE(b.bin(rtl::OpKind::Mul, b.ref(a), b.ref(c)),
                     b.bin(rtl::OpKind::Div, b.ref(a), b.ref(c))));
  b.assign(z, b.xorE(b.bin(rtl::OpKind::Shl, b.ref(a), b.ref(amt)),
                     b.xorE(b.bin(rtl::OpKind::Shr, b.ref(c), b.ref(amt)),
                            b.bin(rtl::OpKind::Mod, b.ref(c), b.ref(a)))));
  return b.take();
}

TEST(SlicedSimTest, LaneFallbackOpsMatchAtEdgeWidths) {
  for (const int width : {1, 2, 31, 32, 63, 64}) {
    SCOPED_TRACE(width);
    expectLanesAgree(makeFallbackMix(width), /*lanes=*/64, /*cycles=*/4,
                     /*seed=*/static_cast<std::uint64_t>(width));
  }
}

/// Mixed-width concat/slice edges: 65- and 128-bit concat-built values,
/// sliced back down, compared wide, plus a wide shift by a narrow signal.
rtl::Module makeWideMix() {
  rtl::ModuleBuilder b{"wide_mix"};
  const auto a = b.input("a", 64);
  const auto c = b.input("b", 64);
  const auto amt = b.input("amt", 4);
  const auto low = b.output("low", 33);
  const auto high = b.output("high", 64);
  const auto red = b.output("red", 1);
  const auto shifted = b.output("shifted", 40);
  const auto wide65 = b.wire("wide65", 65);
  b.assign(wide65, b.concat(parts(b.slice(b.ref(a), 0, 0), b.ref(c))));
  const auto wide128 = b.wire("wide128", 128);
  b.assign(wide128, b.concat(parts(b.ref(a), b.ref(c))));
  b.assign(low, b.slice(b.ref(wide128), 32, 0));
  b.assign(high, b.slice(b.ref(wide128), 127, 64));
  b.assign(red, b.bin(rtl::OpKind::Ne, b.ref(wide65), b.ref(wide128)));
  // Wide value, variable amount: exercises the per-lane BitVector fallback.
  b.assign(shifted, b.slice(b.bin(rtl::OpKind::Shr, b.ref(wide128), b.ref(amt)), 39, 0));
  return b.take();
}

TEST(SlicedSimTest, MixedWidthConcatSliceEdges) {
  expectLanesAgree(makeWideMix(), /*lanes=*/64, /*cycles=*/6, /*seed=*/9);
}

/// Sequential case with slice writes: predicated (if-converted) dispatch and
/// shadow-plane double buffering, including partially written registers.
rtl::Module makeCaseCounter() {
  rtl::ModuleBuilder b{"case_counter"};
  const auto clk = b.input("clk", 1);
  const auto mode = b.input("mode", 2);
  const auto count = b.outputReg("count", 8);

  std::vector<rtl::CaseItem> items;
  {
    rtl::CaseItem item;
    item.labels = {0};
    item.body = rtl::makeAssign({count, std::nullopt}, b.add(b.ref(count), b.lit(1, 8)),
                                /*nonBlocking=*/true);
    items.push_back(std::move(item));
  }
  {
    rtl::CaseItem item;
    item.labels = {1, 2};
    item.body = rtl::makeAssign({count, std::pair<int, int>{3, 0}},
                                b.add(b.slice(b.ref(count), 3, 0), b.lit(1, 4)),
                                /*nonBlocking=*/true);
    items.push_back(std::move(item));
  }
  auto defaultBody = rtl::makeAssign({count, std::nullopt}, b.lit(0x80, 8),
                                     /*nonBlocking=*/true);
  b.seqProcess(clk, rtl::makeCase(b.ref(mode), std::move(items), std::move(defaultBody)));
  return b.take();
}

TEST(SlicedSimTest, PredicatedCaseAndShadowedSliceWrites) {
  // Lanes diverge across the case arms every cycle; each lane must follow
  // its own arm exactly as the interpreter does.
  expectLanesAgree(makeCaseCounter(), /*lanes=*/64, /*cycles=*/8, /*seed=*/11);
}

// ---- batch API (trace-level, against the scalar tape) --------------------

/// SlicedSim::runVectors must return byte-identical traces to
/// CompiledSim::runVectors on the same request/stimuli/keys.  Lane counts
/// 1/63/64/65 pin the chunk boundaries (partial arena, full arena, spill
/// into a second chunk).
void expectTracesMatchScalar(const rtl::Module& module, int vectors, int cycles,
                             std::uint64_t seed, bool withKeys) {
  support::Rng rng{seed};
  std::vector<rtl::SignalId> inputs;
  std::vector<rtl::SignalId> outputs;
  for (const rtl::SignalId id : module.ports()) {
    if (module.signal(id).dir == rtl::PortDir::Input) {
      inputs.push_back(id);
    } else {
      outputs.push_back(id);
    }
  }
  CompiledSim scalar{module};
  std::optional<rtl::SignalId> clock;
  if (!scalar.clocks().empty()) {
    clock = scalar.clocks().front();
    std::erase(inputs, *clock);
  }

  const CompiledSim::BatchRequest request{inputs, outputs, clock, cycles};
  std::vector<std::vector<BitVector>> stimuli(static_cast<std::size_t>(vectors));
  for (auto& stimulus : stimuli) {
    for (int cycle = 0; cycle < cycles; ++cycle) {
      for (const rtl::SignalId input : inputs) {
        stimulus.push_back(BitVector::random(module.signal(input).width, rng));
      }
    }
  }
  std::vector<BitVector> keys;
  if (withKeys && module.keyWidth() > 0) {
    for (int v = 0; v < vectors; ++v) keys.push_back(BitVector::random(module.keyWidth(), rng));
  }

  const auto scalarTraces = scalar.runVectors(request, stimuli, keys);
  SlicedSim sliced{module};
  const auto slicedTraces = sliced.runVectors(request, stimuli, keys);
  ASSERT_EQ(scalarTraces.size(), slicedTraces.size());
  for (std::size_t v = 0; v < scalarTraces.size(); ++v) {
    ASSERT_EQ(scalarTraces[v].size(), slicedTraces[v].size()) << "vector " << v;
    for (std::size_t s = 0; s < scalarTraces[v].size(); ++s) {
      ASSERT_EQ(scalarTraces[v][s], slicedTraces[v][s]) << "vector " << v << " sample " << s;
    }
  }
}

TEST(SlicedSimTest, RunVectorsMatchesScalarTapeAtChunkBoundaries) {
  const rtl::Module fir = designs::makeBenchmark("FIR");
  for (const int vectors : {1, 63, 64, 65}) {
    SCOPED_TRACE(vectors);
    expectTracesMatchScalar(fir, vectors, /*cycles=*/2,
                            /*seed=*/static_cast<std::uint64_t>(vectors), /*withKeys=*/false);
  }
}

TEST(SlicedSimTest, RunVectorsMatchesScalarTapeWithPerVectorKeys) {
  support::Rng lockRng{13};
  rtl::Module module = designs::makeBenchmark("FIR");
  lock::LockEngine engine{module, lock::PairTable::fixed()};
  lock::assureRandomLock(engine, std::max(1, engine.initialLockableOps() / 2), lockRng);
  for (const int vectors : {1, 63, 64, 65}) {
    SCOPED_TRACE(vectors);
    expectTracesMatchScalar(module, vectors, /*cycles=*/2,
                            /*seed=*/20 + static_cast<std::uint64_t>(vectors),
                            /*withKeys=*/true);
  }
}

TEST(SlicedSimTest, RunVectorsMatchesScalarTapeOnWideAndCasey) {
  expectTracesMatchScalar(makeWideMix(), /*vectors=*/65, /*cycles=*/1, /*seed=*/5,
                          /*withKeys=*/false);
  expectTracesMatchScalar(makeCaseCounter(), /*vectors=*/65, /*cycles=*/4, /*seed=*/6,
                          /*withKeys=*/false);
}

// ---- key/state lifecycle -------------------------------------------------

TEST(SlicedSimTest, ResetClearsKeyPlanesBetweenBatches) {
  // Regression pin: a keyless batch run after a keyed batch must behave
  // exactly like a keyless batch on a fresh instance (zero key), not reuse
  // the previous batch's key lanes.
  support::Rng lockRng{17};
  rtl::Module module = designs::makeBenchmark("FIR");
  lock::LockEngine engine{module, lock::PairTable::fixed()};
  lock::assureRandomLock(engine, std::max(1, engine.initialLockableOps() / 2), lockRng);

  support::Rng rng{23};
  std::vector<rtl::SignalId> inputs;
  std::vector<rtl::SignalId> outputs;
  for (const rtl::SignalId id : module.ports()) {
    if (module.signal(id).dir == rtl::PortDir::Input) {
      inputs.push_back(id);
    } else {
      outputs.push_back(id);
    }
  }
  SlicedSim sliced{module};
  std::optional<rtl::SignalId> clock;
  if (!sliced.clocks().empty()) {
    clock = sliced.clocks().front();
    std::erase(inputs, *clock);
  }
  const SlicedSim::BatchRequest request{inputs, outputs, clock, /*cycles=*/2};
  std::vector<std::vector<BitVector>> stimuli(8);
  for (auto& stimulus : stimuli) {
    for (int cycle = 0; cycle < request.cycles; ++cycle) {
      for (const rtl::SignalId input : inputs) {
        stimulus.push_back(BitVector::random(module.signal(input).width, rng));
      }
    }
  }
  std::vector<BitVector> keys;
  for (int v = 0; v < 8; ++v) keys.push_back(BitVector::random(module.keyWidth(), rng));

  (void)sliced.runVectors(request, stimuli, keys);  // keyed batch
  const auto keyless = sliced.runVectors(request, stimuli, {});

  SlicedSim fresh{module};
  const auto expected = fresh.runVectors(request, stimuli, {});
  ASSERT_EQ(keyless, expected);
}

TEST(SlicedSimTest, MaskedSetKeysMatchesPerLaneExpansion) {
  // The mask overload is a pure packing optimisation: driving key i into the
  // lanes of laneMasks[i] must land bit-identical planes to listing the same
  // key once per lane, including zero keys for lanes no mask covers.
  support::Rng lockRng{29};
  rtl::Module module = designs::makeBenchmark("FIR");
  lock::LockEngine engine{module, lock::PairTable::fixed()};
  lock::assureRandomLock(engine, std::max(1, engine.initialLockableOps() / 2), lockRng);

  support::Rng rng{31};
  std::vector<rtl::SignalId> inputs;
  std::vector<rtl::SignalId> outputs;
  for (const rtl::SignalId id : module.ports()) {
    (module.signal(id).dir == rtl::PortDir::Input ? inputs : outputs).push_back(id);
  }
  std::vector<BitVector> keys;
  for (int k = 0; k < 3; ++k) keys.push_back(BitVector::random(module.keyWidth(), rng));
  // Lanes 0-19 -> key 0, 20-39 -> key 1, 40-55 -> key 2, 56-63 uncovered.
  const std::vector<std::uint64_t> masks{0xFFFFFULL, 0xFFFFFULL << 20, 0xFFFFULL << 40};
  std::vector<BitVector> perLane(56, keys[0]);
  for (int lane = 20; lane < 40; ++lane) perLane[static_cast<std::size_t>(lane)] = keys[1];
  for (int lane = 40; lane < 56; ++lane) perLane[static_cast<std::size_t>(lane)] = keys[2];

  SlicedSim masked{module};
  SlicedSim expanded{module};
  masked.setKeys(keys, masks);
  expanded.setKeys(perLane);
  for (const rtl::SignalId input : inputs) {
    const BitVector value = BitVector::random(module.signal(input).width, rng);
    masked.setValue(input, value);
    expanded.setValue(input, value);
  }
  masked.settle();
  expanded.settle();
  for (const rtl::SignalId output : outputs) {
    for (int lane = 0; lane < SlicedSim::kLanes; ++lane) {
      ASSERT_EQ(masked.laneValue(output, lane), expanded.laneValue(output, lane))
          << "output " << module.signal(output).name << " lane " << lane;
    }
  }
}

TEST(SlicedSimTest, SharedProgramBacksIndependentInstances) {
  const rtl::Module module = makeFallbackMix(32);
  auto program = std::make_shared<const Program>(Compiler::compileSliced(module));
  SlicedSim first{program};
  SlicedSim second{program};

  const auto a = *module.findSignal("a");
  const auto b = *module.findSignal("b");
  const auto amt = *module.findSignal("amt");
  const auto y = *module.findSignal("y");
  first.setValue(a, BitVector{5, 32});
  first.setValue(b, BitVector{7, 32});
  first.setValue(amt, BitVector{1, 7});
  second.setValue(a, BitVector{100, 32});
  second.setValue(b, BitVector{200, 32});
  second.setValue(amt, BitVector{2, 7});
  first.settle();
  second.settle();
  EXPECT_NE(first.laneValue(y, 0), second.laneValue(y, 0));

  Evaluator reference{module};
  reference.setValue(a, BitVector{5, 32});
  reference.setValue(b, BitVector{7, 32});
  reference.setValue(amt, BitVector{1, 7});
  reference.settle();
  EXPECT_EQ(reference.value(y), first.laneValue(y, 0));
  EXPECT_EQ(reference.value(y), first.laneValue(y, 63));  // broadcast reaches every lane
}

TEST(SlicedSimTest, RejectsScalarPrograms) {
  const rtl::Module module = makeFallbackMix(8);
  auto scalar = std::make_shared<const Program>(Compiler::compile(module));
  EXPECT_THROW(SlicedSim{scalar}, support::ContractViolation);
}

}  // namespace
}  // namespace rtlock::sim
