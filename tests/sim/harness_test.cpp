#include "sim/harness.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/assure.hpp"
#include "designs/registry.hpp"
#include "rtl/builder.hpp"

namespace rtlock::sim {
namespace {

rtl::Module makeAdder(const std::string& name, bool buggy = false) {
  rtl::ModuleBuilder b{name};
  const auto a = b.input("a", 8);
  const auto c = b.input("b", 8);
  const auto y = b.output("y", 8);
  b.assign(y, buggy ? b.sub(b.ref(a), b.ref(c)) : b.add(b.ref(a), b.ref(c)));
  return b.take();
}

/// Correctly locked adder: key bit 1 selects the true branch.
rtl::Module makeLockedAdder(bool correctKeyIsOne) {
  rtl::ModuleBuilder b{"adder_locked"};
  const auto a = b.input("a", 8);
  const auto c = b.input("b", 8);
  const auto y = b.output("y", 8);
  auto real = b.add(b.ref(a), b.ref(c));
  auto dummy = b.sub(b.ref(a), b.ref(c));
  if (correctKeyIsOne) {
    b.assign(y, b.mux(rtl::makeKeyRef(0), std::move(real), std::move(dummy)));
  } else {
    b.assign(y, b.mux(rtl::makeKeyRef(0), std::move(dummy), std::move(real)));
  }
  rtl::Module m = b.take();
  m.allocateKeyBits(1);
  return m;
}

TEST(HarnessTest, IdenticalModulesAreEquivalent) {
  support::Rng rng{1};
  const auto golden = makeAdder("golden");
  const auto candidate = makeAdder("candidate");
  EXPECT_TRUE(functionallyEquivalent(golden, candidate, BitVector{1}, {}, rng));
}

TEST(HarnessTest, BuggyModuleIsDetected) {
  support::Rng rng{2};
  const auto golden = makeAdder("golden");
  const auto buggy = makeAdder("buggy", /*buggy=*/true);
  const auto mismatch = findMismatch(golden, buggy, BitVector{1}, {}, rng);
  ASSERT_TRUE(mismatch.has_value());
  EXPECT_EQ(mismatch->output, "y");
}

TEST(HarnessTest, LockedModuleEquivalentUnderCorrectKey) {
  support::Rng rng{3};
  const auto golden = makeAdder("golden");
  EXPECT_TRUE(
      functionallyEquivalent(golden, makeLockedAdder(true), BitVector{1, 1}, {}, rng));
  EXPECT_TRUE(
      functionallyEquivalent(golden, makeLockedAdder(false), BitVector{0, 1}, {}, rng));
}

TEST(HarnessTest, LockedModuleDivergesUnderWrongKey) {
  support::Rng rng{4};
  const auto golden = makeAdder("golden");
  EXPECT_FALSE(
      functionallyEquivalent(golden, makeLockedAdder(true), BitVector{0, 1}, {}, rng));
}

TEST(HarnessTest, CorruptionZeroForCorrectKey) {
  support::Rng rng{5};
  const auto golden = makeAdder("golden");
  const auto locked = makeLockedAdder(true);
  EXPECT_DOUBLE_EQ(outputCorruption(golden, locked, BitVector{1, 1}, {}, rng), 0.0);
}

TEST(HarnessTest, CorruptionPositiveForWrongKey) {
  support::Rng rng{6};
  const auto golden = makeAdder("golden");
  const auto locked = makeLockedAdder(true);
  const double corruption = outputCorruption(golden, locked, BitVector{0, 1}, {}, rng);
  EXPECT_GT(corruption, 0.1);  // add vs sub differ on most random stimuli
}

TEST(HarnessTest, SequentialDesignsCompared) {
  // Two counters, one off by one: divergence appears after a clock edge.
  const auto makeCounter = [](const std::string& name, std::uint64_t step) {
    rtl::ModuleBuilder b{name};
    const auto clk = b.input("clk", 1);
    const auto q = b.reg("q", 8);
    const auto y = b.output("y", 8);
    b.regAssign(clk, q, b.add(b.ref(q), b.lit(step, 8)));
    b.assign(y, b.ref(q));
    return b.take();
  };
  support::Rng rng{7};
  EXPECT_TRUE(
      functionallyEquivalent(makeCounter("c1", 1), makeCounter("c2", 1), BitVector{1}, {}, rng));
  EXPECT_FALSE(
      functionallyEquivalent(makeCounter("c1", 1), makeCounter("c3", 2), BitVector{1}, {}, rng));
}

// ---- backend parity ------------------------------------------------------
//
// The compiled (scalar) backend is the oracle for the sliced default: with
// the same rng seed both backends must report identical corruption values
// and the identical first mismatch.

struct LockedFir {
  rtl::Module module;
  BitVector correctKey;
};

LockedFir makeLockedFir() {
  rtl::Module module = designs::makeBenchmark("FIR");
  lock::LockEngine engine{module, lock::PairTable::fixed()};
  support::Rng lockRng{41};
  lock::assureRandomLock(engine, std::max(1, engine.initialLockableOps() / 2), lockRng);
  BitVector key{module.keyWidth()};
  for (const lock::LockRecord& record : engine.records()) {
    key.setBit(record.keyIndex, record.keyValue);
  }
  return {std::move(module), std::move(key)};
}

TEST(HarnessBackendTest, CorruptionIdenticalAcrossBackends) {
  const rtl::Module golden = designs::makeBenchmark("FIR");
  const rtl::Module locked = makeLockedFir().module;
  Harness scalar{golden, locked, SimBackend::Compiled};
  Harness sliced{golden, locked, SimBackend::Sliced};
  EquivalenceOptions options;
  options.vectors = 70;  // spills into a second 64-lane chunk
  options.cyclesPerVector = 3;
  support::Rng keyRng{42};
  for (int trial = 0; trial < 4; ++trial) {
    const BitVector key = BitVector::random(locked.keyWidth(), keyRng);
    support::Rng scalarRng{100 + static_cast<std::uint64_t>(trial)};
    support::Rng slicedRng{100 + static_cast<std::uint64_t>(trial)};
    EXPECT_DOUBLE_EQ(scalar.outputCorruption(key, options, scalarRng),
                     sliced.outputCorruption(key, options, slicedRng));
  }
}

TEST(HarnessBackendTest, FirstMismatchIdenticalAcrossBackends) {
  const rtl::Module golden = designs::makeBenchmark("FIR");
  const LockedFir fir = makeLockedFir();
  const rtl::Module& locked = fir.module;
  Harness scalar{golden, locked, SimBackend::Compiled};
  Harness sliced{golden, locked, SimBackend::Sliced};
  EquivalenceOptions options;
  options.vectors = 70;
  options.cyclesPerVector = 3;
  support::Rng keyRng{43};
  const BitVector& correct = fir.correctKey;  // trial 0: the no-mismatch case
  for (int trial = 0; trial < 4; ++trial) {
    const BitVector key =
        trial == 0 ? correct : BitVector::random(locked.keyWidth(), keyRng);
    support::Rng scalarRng{200 + static_cast<std::uint64_t>(trial)};
    support::Rng slicedRng{200 + static_cast<std::uint64_t>(trial)};
    const auto expected = scalar.findMismatch(key, options, scalarRng);
    const auto actual = sliced.findMismatch(key, options, slicedRng);
    ASSERT_EQ(expected.has_value(), actual.has_value()) << "trial " << trial;
    if (expected.has_value()) {
      EXPECT_EQ(expected->output, actual->output);
      EXPECT_EQ(expected->vector, actual->vector);
      EXPECT_EQ(expected->cycle, actual->cycle);
    }
  }
}

TEST(HarnessBackendTest, CorruptionBatchMatchesPerKeyCalls) {
  const rtl::Module golden = designs::makeBenchmark("FIR");
  const rtl::Module locked = makeLockedFir().module;
  EquivalenceOptions options;
  options.vectors = 5;  // 20 keys x 5 vectors = 100 lanes across two chunks
  options.cyclesPerVector = 3;
  support::Rng keyRng{44};
  std::vector<BitVector> keys;
  for (int k = 0; k < 20; ++k) keys.push_back(BitVector::random(locked.keyWidth(), keyRng));

  // Per-key oracle values: the scalar backend over identical stimuli.
  Harness scalar{golden, locked, SimBackend::Compiled};
  std::vector<double> expected;
  for (const BitVector& key : keys) {
    support::Rng rng{300};
    expected.push_back(scalar.outputCorruption(key, options, rng));
  }

  for (const SimBackend backend : {SimBackend::Compiled, SimBackend::Sliced}) {
    Harness harness{golden, locked, backend};
    support::Rng rng{300};
    const auto batch = harness.outputCorruptionBatch(keys, options, rng);
    ASSERT_EQ(batch.size(), keys.size());
    for (std::size_t k = 0; k < keys.size(); ++k) {
      EXPECT_DOUBLE_EQ(batch[k], expected[k]) << "backend "
                                              << (backend == SimBackend::Sliced ? "sliced"
                                                                                : "compiled")
                                              << " key " << k;
    }
  }
}

TEST(HarnessBackendTest, StaleKeysNeverLeakAcrossCalls) {
  // Regression pin: after measuring under a wrong key, a fresh call on the
  // same harness with the correct key must see zero corruption — no key
  // planes or arena words may survive from the previous sweep.
  const rtl::Module golden = designs::makeBenchmark("FIR");
  const LockedFir fir = makeLockedFir();
  const rtl::Module& locked = fir.module;
  for (const SimBackend backend : {SimBackend::Compiled, SimBackend::Sliced}) {
    Harness harness{golden, locked, backend};
    const BitVector& correct = fir.correctKey;
    BitVector wrong = fir.correctKey;
    for (int bit = 0; bit < locked.keyWidth(); ++bit) wrong.setBit(bit, !wrong.bit(bit));
    EquivalenceOptions options;
    options.cyclesPerVector = 16;  // past the FIR pipeline depth
    support::Rng rng1{400};
    ASSERT_GT(harness.outputCorruption(wrong, options, rng1), 0.0);
    support::Rng rng2{401};
    EXPECT_DOUBLE_EQ(harness.outputCorruption(correct, options, rng2), 0.0);
    support::Rng rng3{402};
    EXPECT_FALSE(harness.findMismatch(correct, options, rng3).has_value());
  }
}

TEST(HarnessTest, MissingPortIsContractViolation) {
  support::Rng rng{8};
  const auto golden = makeAdder("golden");
  rtl::ModuleBuilder b{"narrow"};
  b.input("a", 8);
  const auto y = b.output("y", 8);
  b.assign(y, b.lit(0, 8));
  const auto narrow = b.take();
  EXPECT_THROW((void)findMismatch(golden, narrow, BitVector{1}, {}, rng),
               support::ContractViolation);
}

}  // namespace
}  // namespace rtlock::sim
