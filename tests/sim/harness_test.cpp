#include "sim/harness.hpp"

#include <gtest/gtest.h>

#include "rtl/builder.hpp"

namespace rtlock::sim {
namespace {

rtl::Module makeAdder(const std::string& name, bool buggy = false) {
  rtl::ModuleBuilder b{name};
  const auto a = b.input("a", 8);
  const auto c = b.input("b", 8);
  const auto y = b.output("y", 8);
  b.assign(y, buggy ? b.sub(b.ref(a), b.ref(c)) : b.add(b.ref(a), b.ref(c)));
  return b.take();
}

/// Correctly locked adder: key bit 1 selects the true branch.
rtl::Module makeLockedAdder(bool correctKeyIsOne) {
  rtl::ModuleBuilder b{"adder_locked"};
  const auto a = b.input("a", 8);
  const auto c = b.input("b", 8);
  const auto y = b.output("y", 8);
  auto real = b.add(b.ref(a), b.ref(c));
  auto dummy = b.sub(b.ref(a), b.ref(c));
  if (correctKeyIsOne) {
    b.assign(y, b.mux(rtl::makeKeyRef(0), std::move(real), std::move(dummy)));
  } else {
    b.assign(y, b.mux(rtl::makeKeyRef(0), std::move(dummy), std::move(real)));
  }
  rtl::Module m = b.take();
  m.allocateKeyBits(1);
  return m;
}

TEST(HarnessTest, IdenticalModulesAreEquivalent) {
  support::Rng rng{1};
  const auto golden = makeAdder("golden");
  const auto candidate = makeAdder("candidate");
  EXPECT_TRUE(functionallyEquivalent(golden, candidate, BitVector{1}, {}, rng));
}

TEST(HarnessTest, BuggyModuleIsDetected) {
  support::Rng rng{2};
  const auto golden = makeAdder("golden");
  const auto buggy = makeAdder("buggy", /*buggy=*/true);
  const auto mismatch = findMismatch(golden, buggy, BitVector{1}, {}, rng);
  ASSERT_TRUE(mismatch.has_value());
  EXPECT_EQ(mismatch->output, "y");
}

TEST(HarnessTest, LockedModuleEquivalentUnderCorrectKey) {
  support::Rng rng{3};
  const auto golden = makeAdder("golden");
  EXPECT_TRUE(
      functionallyEquivalent(golden, makeLockedAdder(true), BitVector{1, 1}, {}, rng));
  EXPECT_TRUE(
      functionallyEquivalent(golden, makeLockedAdder(false), BitVector{0, 1}, {}, rng));
}

TEST(HarnessTest, LockedModuleDivergesUnderWrongKey) {
  support::Rng rng{4};
  const auto golden = makeAdder("golden");
  EXPECT_FALSE(
      functionallyEquivalent(golden, makeLockedAdder(true), BitVector{0, 1}, {}, rng));
}

TEST(HarnessTest, CorruptionZeroForCorrectKey) {
  support::Rng rng{5};
  const auto golden = makeAdder("golden");
  const auto locked = makeLockedAdder(true);
  EXPECT_DOUBLE_EQ(outputCorruption(golden, locked, BitVector{1, 1}, {}, rng), 0.0);
}

TEST(HarnessTest, CorruptionPositiveForWrongKey) {
  support::Rng rng{6};
  const auto golden = makeAdder("golden");
  const auto locked = makeLockedAdder(true);
  const double corruption = outputCorruption(golden, locked, BitVector{0, 1}, {}, rng);
  EXPECT_GT(corruption, 0.1);  // add vs sub differ on most random stimuli
}

TEST(HarnessTest, SequentialDesignsCompared) {
  // Two counters, one off by one: divergence appears after a clock edge.
  const auto makeCounter = [](const std::string& name, std::uint64_t step) {
    rtl::ModuleBuilder b{name};
    const auto clk = b.input("clk", 1);
    const auto q = b.reg("q", 8);
    const auto y = b.output("y", 8);
    b.regAssign(clk, q, b.add(b.ref(q), b.lit(step, 8)));
    b.assign(y, b.ref(q));
    return b.take();
  };
  support::Rng rng{7};
  EXPECT_TRUE(
      functionallyEquivalent(makeCounter("c1", 1), makeCounter("c2", 1), BitVector{1}, {}, rng));
  EXPECT_FALSE(
      functionallyEquivalent(makeCounter("c1", 1), makeCounter("c3", 2), BitVector{1}, {}, rng));
}

TEST(HarnessTest, MissingPortIsContractViolation) {
  support::Rng rng{8};
  const auto golden = makeAdder("golden");
  rtl::ModuleBuilder b{"narrow"};
  b.input("a", 8);
  const auto y = b.output("y", 8);
  b.assign(y, b.lit(0, 8));
  const auto narrow = b.take();
  EXPECT_THROW((void)findMismatch(golden, narrow, BitVector{1}, {}, rng),
               support::ContractViolation);
}

}  // namespace
}  // namespace rtlock::sim
