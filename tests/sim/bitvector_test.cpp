#include "sim/bitvector.hpp"

#include <gtest/gtest.h>

#include "support/diagnostics.hpp"

namespace rtlock::sim {
namespace {

TEST(BitVectorTest, ConstructionAndMasking) {
  const BitVector v{0xFFFF, 8};
  EXPECT_EQ(v.width(), 8);
  EXPECT_EQ(v.toUint64(), 0xFFu);
  EXPECT_THROW(BitVector(0, 0), support::ContractViolation);
}

TEST(BitVectorTest, BitAccess) {
  BitVector v{0b1010, 4};
  EXPECT_FALSE(v.bit(0));
  EXPECT_TRUE(v.bit(1));
  v.setBit(0, true);
  EXPECT_EQ(v.toUint64(), 0b1011u);
  EXPECT_THROW((void)v.bit(4), support::ContractViolation);
}

TEST(BitVectorTest, WideVectorsAcrossWords) {
  BitVector v{100};
  v.setBit(99, true);
  v.setBit(0, true);
  EXPECT_TRUE(v.bit(99));
  EXPECT_TRUE(v.bit(0));
  EXPECT_FALSE(v.bit(64));
  EXPECT_EQ(v.popcount(), 2);
}

// Property sweep: arithmetic on widths <= 64 must match native integer
// arithmetic masked to the width.
class ArithmeticProperty : public ::testing::TestWithParam<int> {};

TEST_P(ArithmeticProperty, MatchesNativeArithmetic) {
  const int width = GetParam();
  support::Rng rng{static_cast<std::uint64_t>(width) * 17};
  const std::uint64_t mask = width >= 64 ? ~0ULL : ((1ULL << width) - 1);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t a = rng() & mask;
    const std::uint64_t b = rng() & mask;
    const BitVector va{a, width};
    const BitVector vb{b, width};
    EXPECT_EQ(BitVector::add(va, vb, width).toUint64(), (a + b) & mask);
    EXPECT_EQ(BitVector::sub(va, vb, width).toUint64(), (a - b) & mask);
    EXPECT_EQ(BitVector::mul(va, vb, width).toUint64(), (a * b) & mask);
    EXPECT_EQ(BitVector::bitAnd(va, vb, width).toUint64(), a & b);
    EXPECT_EQ(BitVector::bitOr(va, vb, width).toUint64(), a | b);
    EXPECT_EQ(BitVector::bitXor(va, vb, width).toUint64(), a ^ b);
    EXPECT_EQ(BitVector::bitXnor(va, vb, width).toUint64(), ~(a ^ b) & mask);
    EXPECT_EQ(BitVector::bitNot(va, width).toUint64(), ~a & mask);
    EXPECT_EQ(BitVector::neg(va, width).toUint64(), (0 - a) & mask);
    EXPECT_EQ(BitVector::ult(va, vb), a < b);
    EXPECT_EQ(BitVector::ule(va, vb), a <= b);
    EXPECT_EQ(BitVector::eq(va, vb), a == b);
    if (b != 0) {
      EXPECT_EQ(BitVector::div(va, vb, width).toUint64(), (a / b) & mask);
      EXPECT_EQ(BitVector::mod(va, vb, width).toUint64(), (a % b) & mask);
    }
    const int shift = static_cast<int>(rng.below(static_cast<std::uint64_t>(width)));
    const BitVector vs{static_cast<std::uint64_t>(shift), 8};
    EXPECT_EQ(BitVector::shl(va, vs, width).toUint64(), (a << shift) & mask);
    EXPECT_EQ(BitVector::shr(va, vs, width).toUint64(), (a & mask) >> shift);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, ArithmeticProperty, ::testing::Values(1, 4, 8, 16, 31, 32, 63, 64));

TEST(BitVectorTest, DivisionByZeroIsAllOnes) {
  const BitVector a{5, 8};
  const BitVector zero{0, 8};
  EXPECT_EQ(BitVector::div(a, zero, 8).toUint64(), 0xFFu);
  EXPECT_EQ(BitVector::mod(a, zero, 8).toUint64(), 0xFFu);
}

TEST(BitVectorTest, PowMatchesRepeatedMultiplication) {
  const BitVector base{3, 16};
  const BitVector exp{5, 16};
  EXPECT_EQ(BitVector::pow(base, exp, 16).toUint64(), 243u);
  EXPECT_EQ(BitVector::pow(base, BitVector{0, 16}, 16).toUint64(), 1u);
}

TEST(BitVectorTest, ShiftBeyondWidthIsZero) {
  const BitVector a{0xFF, 8};
  EXPECT_EQ(BitVector::shl(a, BitVector{8, 8}, 8).toUint64(), 0u);
  EXPECT_EQ(BitVector::shr(a, BitVector{9, 8}, 8).toUint64(), 0u);
}

TEST(BitVectorTest, MultiWordShifts) {
  BitVector v{1, 128};
  const BitVector by100{100, 8};
  const BitVector shifted = BitVector::shl(v, by100, 128);
  EXPECT_TRUE(shifted.bit(100));
  EXPECT_EQ(shifted.popcount(), 1);
  const BitVector back = BitVector::shr(shifted, by100, 128);
  EXPECT_TRUE(back.bit(0));
  EXPECT_EQ(back.popcount(), 1);
}

TEST(BitVectorTest, MultiWordAddCarries) {
  BitVector ones{128};
  for (int i = 0; i < 64; ++i) ones.setBit(i, true);  // low word all ones
  const BitVector one{1, 128};
  const BitVector sum = BitVector::add(ones, one, 128);
  EXPECT_TRUE(sum.bit(64));
  EXPECT_EQ(sum.popcount(), 1);
}

TEST(BitVectorTest, SliceAndConcat) {
  const BitVector v{0xABCD, 16};
  EXPECT_EQ(v.slice(7, 0).toUint64(), 0xCDu);
  EXPECT_EQ(v.slice(15, 8).toUint64(), 0xABu);
  EXPECT_EQ(v.slice(11, 4).toUint64(), 0xBCu);

  const BitVector hi{0xAB, 8};
  const BitVector lo{0xCD, 8};
  const BitVector joined = BitVector::concat({hi, lo});
  EXPECT_EQ(joined.width(), 16);
  EXPECT_EQ(joined.toUint64(), 0xABCDu);
}

TEST(BitVectorTest, InsertWritesField) {
  BitVector v{0, 16};
  v.insert(4, BitVector{0xF, 4});
  EXPECT_EQ(v.toUint64(), 0xF0u);
}

TEST(BitVectorTest, ResizeExtendsAndTruncates) {
  const BitVector v{0xFF, 8};
  EXPECT_EQ(v.resized(16).toUint64(), 0xFFu);
  EXPECT_EQ(v.resized(4).toUint64(), 0xFu);
  EXPECT_EQ(v.resized(4).width(), 4);
}

TEST(BitVectorTest, HammingDistance) {
  EXPECT_EQ(BitVector::hammingDistance(BitVector{0b1100, 4}, BitVector{0b1010, 4}), 2);
  EXPECT_EQ(BitVector::hammingDistance(BitVector{0, 4}, BitVector{0xF, 4}), 4);
  EXPECT_THROW((void)BitVector::hammingDistance(BitVector{0, 4}, BitVector{0, 5}),
               support::ContractViolation);
}

TEST(BitVectorTest, RandomRespectsWidth) {
  support::Rng rng{1};
  for (int i = 0; i < 50; ++i) {
    const BitVector v = BitVector::random(12, rng);
    EXPECT_EQ(v.width(), 12);
    EXPECT_LT(v.toUint64(), 1u << 12);
  }
}

TEST(BitVectorTest, BinaryStringRendering) {
  EXPECT_EQ(BitVector(0b101, 3).toBinaryString(), "101");
  EXPECT_EQ(BitVector(0, 2).toBinaryString(), "00");
}

}  // namespace
}  // namespace rtlock::sim
