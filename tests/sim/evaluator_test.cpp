#include "sim/evaluator.hpp"

#include <gtest/gtest.h>

#include "rtl/builder.hpp"
#include "verilog/parser.hpp"

namespace rtlock::sim {
namespace {

TEST(EvaluatorTest, CombinationalAdder) {
  rtl::ModuleBuilder b{"adder"};
  const auto a = b.input("a", 8);
  const auto c = b.input("b", 8);
  const auto y = b.output("y", 8);
  b.assign(y, b.add(b.ref(a), b.ref(c)));
  const rtl::Module m = b.take();

  Evaluator eval{m};
  eval.setValue(a, BitVector{200, 8});
  eval.setValue(c, BitVector{100, 8});
  eval.settle();
  EXPECT_EQ(eval.value(y).toUint64(), (200 + 100) & 0xFF);
}

TEST(EvaluatorTest, AssignChainsFollowDependencyOrder) {
  // Declared out of dependency order on purpose: y reads w2, w2 reads w1.
  const auto m = verilog::parseModule(R"(
    module chain (input [7:0] a, output [7:0] y);
      wire [7:0] w1, w2;
      assign y = w2 + 8'd1;
      assign w2 = w1 * 8'd2;
      assign w1 = a + 8'd3;
    endmodule
  )");
  Evaluator eval{m};
  eval.setValue(*m.findSignal("a"), BitVector{5, 8});
  eval.settle();
  EXPECT_EQ(eval.value(*m.findSignal("y")).toUint64(), ((5 + 3) * 2 + 1) & 0xFFu);
}

TEST(EvaluatorTest, CombinationalLoopRejected) {
  // The IR verifier now runs inside parseModule, so the loop is rejected at
  // parse time (V111) — before an Evaluator could even be constructed.
  EXPECT_THROW(verilog::parseModule(R"(
                 module loop (input [3:0] a, output [3:0] y);
                   wire [3:0] u, v;
                   assign u = v + a;
                   assign v = u + 4'd1;
                   assign y = v;
                 endmodule
               )"),
               support::Error);
}

TEST(EvaluatorTest, KeyedMuxSelectsBranch) {
  rtl::ModuleBuilder b{"locked"};
  const auto a = b.input("a", 8);
  const auto y = b.output("y", 8);
  b.assign(y, b.mux(rtl::makeKeyRef(0), b.add(b.ref(a), b.lit(1, 8)),
                    b.sub(b.ref(a), b.lit(1, 8))));
  rtl::Module m = b.take();
  m.allocateKeyBits(1);

  Evaluator eval{m};
  eval.setValue(a, BitVector{10, 8});
  eval.setKey(BitVector{1, 1});
  eval.settle();
  EXPECT_EQ(eval.value(y).toUint64(), 11u);
  eval.setKey(BitVector{0, 1});
  eval.settle();
  EXPECT_EQ(eval.value(y).toUint64(), 9u);
}

TEST(EvaluatorTest, SequentialRegisterPipeline) {
  const auto m = verilog::parseModule(R"(
    module pipe (input clk, input [7:0] d, output [7:0] q2);
      reg [7:0] q0, q1;
      always @(posedge clk) begin
        q0 <= d;
        q1 <= q0;
      end
      assign q2 = q1;
    endmodule
  )");
  Evaluator eval{m};
  const auto clk = *m.findSignal("clk");
  const auto d = *m.findSignal("d");
  const auto q2 = *m.findSignal("q2");

  eval.setValue(d, BitVector{42, 8});
  eval.settle();
  EXPECT_EQ(eval.value(q2).toUint64(), 0u);  // registers reset to zero
  eval.clockEdge(clk);
  EXPECT_EQ(eval.value(q2).toUint64(), 0u);  // one stage deep
  eval.clockEdge(clk);
  EXPECT_EQ(eval.value(q2).toUint64(), 42u);
}

TEST(EvaluatorTest, NonBlockingUsesPreEdgeValues) {
  // Swap register: both assignments read pre-edge state.
  const auto m = verilog::parseModule(R"(
    module swap (input clk, input [3:0] seed, output [3:0] ya, output [3:0] yb);
      reg [3:0] ra, rb;
      always @(posedge clk) begin
        ra <= rb;
        rb <= ra + seed;
      end
      assign ya = ra;
      assign yb = rb;
    endmodule
  )");
  Evaluator eval{m};
  const auto clk = *m.findSignal("clk");
  eval.setValue(*m.findSignal("seed"), BitVector{1, 4});
  eval.settle();
  eval.clockEdge(clk);  // ra=0, rb=1
  EXPECT_EQ(eval.value(*m.findSignal("ya")).toUint64(), 0u);
  EXPECT_EQ(eval.value(*m.findSignal("yb")).toUint64(), 1u);
  eval.clockEdge(clk);  // ra=1, rb=0+1=1
  EXPECT_EQ(eval.value(*m.findSignal("ya")).toUint64(), 1u);
  EXPECT_EQ(eval.value(*m.findSignal("yb")).toUint64(), 1u);
}

TEST(EvaluatorTest, CombinationalProcessWithCase) {
  const auto m = verilog::parseModule(R"(
    module alu (input [1:0] op, input [7:0] a, input [7:0] b, output reg [7:0] y);
      always @(*) begin
        case (op)
          2'd0: y = a + b;
          2'd1: y = a - b;
          2'd2: y = a & b;
          default: y = 8'h00;
        endcase
      end
    endmodule
  )");
  Evaluator eval{m};
  const auto op = *m.findSignal("op");
  const auto a = *m.findSignal("a");
  const auto bsig = *m.findSignal("b");
  const auto y = *m.findSignal("y");
  eval.setValue(a, BitVector{12, 8});
  eval.setValue(bsig, BitVector{10, 8});

  eval.setValue(op, BitVector{0, 2});
  eval.settle();
  EXPECT_EQ(eval.value(y).toUint64(), 22u);
  eval.setValue(op, BitVector{1, 2});
  eval.settle();
  EXPECT_EQ(eval.value(y).toUint64(), 2u);
  eval.setValue(op, BitVector{2, 2});
  eval.settle();
  EXPECT_EQ(eval.value(y).toUint64(), 8u);
  eval.setValue(op, BitVector{3, 2});
  eval.settle();
  EXPECT_EQ(eval.value(y).toUint64(), 0u);
}

TEST(EvaluatorTest, IfElseChain) {
  const auto m = verilog::parseModule(R"(
    module cmp (input [7:0] a, input [7:0] b, output reg [1:0] y);
      always @(*) begin
        if (a > b) y = 2'd2;
        else if (a == b) y = 2'd1;
        else y = 2'd0;
      end
    endmodule
  )");
  Evaluator eval{m};
  const auto a = *m.findSignal("a");
  const auto bsig = *m.findSignal("b");
  const auto y = *m.findSignal("y");
  eval.setValue(a, BitVector{9, 8});
  eval.setValue(bsig, BitVector{5, 8});
  eval.settle();
  EXPECT_EQ(eval.value(y).toUint64(), 2u);
  eval.setValue(bsig, BitVector{9, 8});
  eval.settle();
  EXPECT_EQ(eval.value(y).toUint64(), 1u);
  eval.setValue(bsig, BitVector{11, 8});
  eval.settle();
  EXPECT_EQ(eval.value(y).toUint64(), 0u);
}

TEST(EvaluatorTest, PartSelectAssignment) {
  const auto m = verilog::parseModule(R"(
    module parts (input [3:0] lo, input [3:0] hi, output [7:0] y);
      assign y[3:0] = lo;
      assign y[7:4] = hi;
    endmodule
  )");
  Evaluator eval{m};
  eval.setValue(*m.findSignal("lo"), BitVector{0xA, 4});
  eval.setValue(*m.findSignal("hi"), BitVector{0x5, 4});
  eval.settle();
  EXPECT_EQ(eval.value(*m.findSignal("y")).toUint64(), 0x5Au);
}

TEST(EvaluatorTest, ConcatSliceUnaryExpressions) {
  const auto m = verilog::parseModule(R"(
    module bits (input [7:0] a, output [7:0] y, output r);
      assign y = {a[3:0], a[7:4]};
      assign r = ^a;
    endmodule
  )");
  Evaluator eval{m};
  eval.setValue(*m.findSignal("a"), BitVector{0xA5, 8});
  eval.settle();
  EXPECT_EQ(eval.value(*m.findSignal("y")).toUint64(), 0x5Au);
  EXPECT_EQ(eval.value(*m.findSignal("r")).toUint64(), 0u);  // 0xA5 has 4 ones
}

TEST(EvaluatorTest, ResetClearsState) {
  rtl::ModuleBuilder b{"cnt"};
  const auto clk = b.input("clk", 1);
  const auto q = b.reg("q", 8);
  const auto y = b.output("y", 8);
  b.regAssign(clk, q, b.add(b.ref(q), b.lit(1, 8)));
  b.assign(y, b.ref(q));
  const rtl::Module m = b.take();

  Evaluator eval{m};
  eval.settle();
  eval.clockEdge(clk);
  eval.clockEdge(clk);
  EXPECT_EQ(eval.value(y).toUint64(), 2u);
  eval.reset();
  eval.settle();
  EXPECT_EQ(eval.value(y).toUint64(), 0u);
}

}  // namespace
}  // namespace rtlock::sim
