// Differential tests: the compiled bytecode backend must be bit-identical
// with the reference interpreter on every registry design (locked and
// unlocked), plus targeted unit tests for the single-word fast path edges
// (widths 1, 63, 64, 65 and wide concats) and the batch-stimulus API.
#include "sim/compiled_sim.hpp"

#include <gtest/gtest.h>

#include "core/assure.hpp"
#include "designs/random.hpp"
#include "designs/registry.hpp"
#include "rtl/builder.hpp"
#include "sim/compiler.hpp"
#include "sim/evaluator.hpp"

namespace rtlock::sim {
namespace {

/// Drives both backends with identical random stimuli and checks every
/// signal after every settle and every clock edge.
void expectBackendsAgree(const rtl::Module& module, int vectors, int cycles,
                         std::uint64_t seed, bool randomKeys = false) {
  Evaluator reference{module};
  CompiledSim compiled{module};
  support::Rng rng{seed};

  std::vector<rtl::SignalId> inputs;
  for (const rtl::SignalId id : module.ports()) {
    if (module.signal(id).dir == rtl::PortDir::Input) inputs.push_back(id);
  }
  const auto& clocks = reference.clocks();
  EXPECT_EQ(clocks, compiled.clocks());

  const auto compareAll = [&](int vector, int cycle, const char* phase) {
    for (rtl::SignalId id = 0; id < module.signalCount(); ++id) {
      ASSERT_EQ(reference.value(id), compiled.value(id))
          << module.name() << " signal '" << module.signal(id).name << "' vector " << vector
          << " cycle " << cycle << " after " << phase;
    }
  };

  for (int vector = 0; vector < vectors; ++vector) {
    reference.reset();
    compiled.reset();
    if (randomKeys && module.keyWidth() > 0) {
      const BitVector key = BitVector::random(module.keyWidth(), rng);
      reference.setKey(key);
      compiled.setKey(key);
    }
    for (int cycle = 0; cycle < cycles; ++cycle) {
      for (const rtl::SignalId input : inputs) {
        const BitVector stimulus = BitVector::random(module.signal(input).width, rng);
        reference.setValue(input, stimulus);
        compiled.setValue(input, stimulus);
      }
      reference.settle();
      compiled.settle();
      compareAll(vector, cycle, "settle");
      for (const rtl::SignalId clock : clocks) {
        reference.clockEdge(clock);
        compiled.clockEdge(clock);
        compareAll(vector, cycle, "clock edge");
      }
    }
  }
}

TEST(CompiledSimDifferentialTest, EveryRegistryDesignMatchesInterpreter) {
  for (const auto& name : designs::benchmarkNames()) {
    SCOPED_TRACE(name);
    const rtl::Module module = designs::makeBenchmark(name);
    expectBackendsAgree(module, /*vectors=*/4, /*cycles=*/4, /*seed=*/1);
  }
}

TEST(CompiledSimDifferentialTest, EveryRegistryDesignMatchesInterpreterWhenLocked) {
  support::Rng lockRng{7};
  for (const auto& name : designs::benchmarkNames()) {
    SCOPED_TRACE(name);
    rtl::Module module = designs::makeBenchmark(name);
    lock::LockEngine engine{module, lock::PairTable::fixed()};
    const int budget = std::max(1, engine.initialLockableOps() / 2);
    lock::assureRandomLock(engine, budget, lockRng);
    ASSERT_GT(module.keyWidth(), 0);
    expectBackendsAgree(module, /*vectors=*/3, /*cycles=*/3, /*seed=*/2,
                        /*randomKeys=*/true);
  }
}

TEST(CompiledSimDifferentialTest, RandomFuzzModulesMatchInterpreter) {
  support::Rng makeRng{31};
  for (int round = 0; round < 25; ++round) {
    SCOPED_TRACE(round);
    designs::RandomModuleParams params;
    params.maxWidth = round % 2 == 0 ? 16 : 64;  // wide rounds stress 64-bit edges
    const rtl::Module module = designs::makeRandomModule(makeRng, params);
    expectBackendsAgree(module, /*vectors=*/3, /*cycles=*/3,
                        /*seed=*/100 + static_cast<std::uint64_t>(round));
  }
}

// ---- single-word fast path edge cases ------------------------------------

/// y = ((a + b) ^ (a << 3)) - (a & b) plus comparisons, at one width.
rtl::Module makeArithMix(int width) {
  rtl::ModuleBuilder b{"arith_" + std::to_string(width)};
  const auto a = b.input("a", width);
  const auto c = b.input("b", width);
  const auto y = b.output("y", width);
  const auto lt = b.output("lt", 1);
  b.assign(y, b.sub(b.xorE(b.add(b.ref(a), b.ref(c)),
                           b.bin(rtl::OpKind::Shl, b.ref(a), b.lit(3, 8))),
                    b.andE(b.ref(a), b.ref(c))));
  b.assign(lt, b.bin(rtl::OpKind::Lt, b.ref(a), b.ref(c)));
  return b.take();
}

TEST(CompiledSimTest, FastPathEdgeWidths) {
  for (const int width : {1, 2, 31, 32, 63, 64}) {
    SCOPED_TRACE(width);
    expectBackendsAgree(makeArithMix(width), /*vectors=*/16, /*cycles=*/1,
                        /*seed=*/static_cast<std::uint64_t>(width));
  }
}

/// Wide path: a 65-bit and a 128-bit value built by concat, sliced back down.
/// Moves a parameter pack of ExprPtr into a vector (concat takes a vector).
template <typename... Parts>
std::vector<rtl::ExprPtr> parts(Parts&&... items) {
  std::vector<rtl::ExprPtr> out;
  (out.push_back(std::forward<Parts>(items)), ...);
  return out;
}

rtl::Module makeWideConcat() {
  rtl::ModuleBuilder b{"wide_concat"};
  const auto a = b.input("a", 64);
  const auto c = b.input("b", 64);
  const auto low = b.output("low", 33);
  const auto high = b.output("high", 64);
  const auto red = b.output("red", 1);
  // 65-bit value {a[0], b}: exercises width 65 and wide shift/slice.
  const auto wide65 = b.wire("wide65", 65);
  b.assign(wide65, b.concat(parts(b.slice(b.ref(a), 0, 0), b.ref(c))));
  // 128-bit value {a, b}: wide concat, compare and slice.
  const auto wide128 = b.wire("wide128", 128);
  b.assign(wide128, b.concat(parts(b.ref(a), b.ref(c))));
  b.assign(low, b.slice(b.ref(wide128), 32, 0));
  b.assign(high, b.slice(b.ref(wide128), 127, 64));
  b.assign(red, b.bin(rtl::OpKind::Ne, b.ref(wide65), b.ref(wide128)));
  return b.take();
}

TEST(CompiledSimTest, WideConcatFallsBackToMultiWord) {
  expectBackendsAgree(makeWideConcat(), /*vectors=*/24, /*cycles=*/1, /*seed=*/9);
}

/// Sequential: case-driven counter with slice writes (jump lowering and
/// shadow-slot double buffering, including partially written registers).
rtl::Module makeCaseCounter() {
  rtl::ModuleBuilder b{"case_counter"};
  const auto clk = b.input("clk", 1);
  const auto mode = b.input("mode", 2);
  const auto count = b.outputReg("count", 8);

  std::vector<rtl::CaseItem> items;
  {
    rtl::CaseItem item;
    item.labels = {0};
    item.body = rtl::makeAssign({count, std::nullopt},
                                b.add(b.ref(count), b.lit(1, 8)), /*nonBlocking=*/true);
    items.push_back(std::move(item));
  }
  {
    rtl::CaseItem item;
    item.labels = {1, 2};
    // Slice write: only the low nibble moves, high nibble must persist.
    item.body = rtl::makeAssign({count, std::pair<int, int>{3, 0}},
                                b.add(b.slice(b.ref(count), 3, 0), b.lit(1, 4)),
                                /*nonBlocking=*/true);
    items.push_back(std::move(item));
  }
  auto defaultBody = rtl::makeAssign({count, std::nullopt}, b.lit(0x80, 8),
                                     /*nonBlocking=*/true);
  b.seqProcess(clk, rtl::makeCase(b.ref(mode), std::move(items), std::move(defaultBody)));
  return b.take();
}

TEST(CompiledSimTest, CaseJumpsAndShadowedSliceWrites) {
  expectBackendsAgree(makeCaseCounter(), /*vectors=*/8, /*cycles=*/6, /*seed=*/11);
}

// ---- batch API -----------------------------------------------------------

TEST(CompiledSimTest, RunVectorsMatchesStepByStepDrive) {
  const rtl::Module module = designs::makeBenchmark("FIR");
  support::Rng rng{21};

  std::vector<rtl::SignalId> inputs;
  std::vector<rtl::SignalId> outputs;
  for (const rtl::SignalId id : module.ports()) {
    if (module.signal(id).dir == rtl::PortDir::Input) {
      inputs.push_back(id);
    } else {
      outputs.push_back(id);
    }
  }

  Evaluator reference{module};
  std::optional<rtl::SignalId> clock;
  if (!reference.clocks().empty()) {
    clock = reference.clocks().front();
    // The clock is driven by the harness, not the stimulus list.
    std::erase(inputs, *clock);
  }

  CompiledSim::BatchRequest request{inputs, outputs, clock, /*cycles=*/3};
  constexpr int kVectors = 5;
  std::vector<std::vector<BitVector>> stimuli(kVectors);
  for (auto& stimulus : stimuli) {
    for (int cycle = 0; cycle < request.cycles; ++cycle) {
      for (const rtl::SignalId input : inputs) {
        stimulus.push_back(BitVector::random(module.signal(input).width, rng));
      }
    }
  }

  CompiledSim compiled{module};
  const auto traces = compiled.runVectors(request, stimuli, {});
  ASSERT_EQ(traces.size(), stimuli.size());

  // Replay through the interpreter and compare every sampled output.
  for (int vector = 0; vector < kVectors; ++vector) {
    reference.reset();
    std::size_t sample = 0;
    for (int cycle = 0; cycle < request.cycles; ++cycle) {
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        reference.setValue(inputs[i],
                           stimuli[static_cast<std::size_t>(vector)]
                                  [static_cast<std::size_t>(cycle) * inputs.size() + i]);
      }
      reference.settle();
      for (const rtl::SignalId output : outputs) {
        ASSERT_EQ(reference.value(output),
                  traces[static_cast<std::size_t>(vector)][sample++]);
      }
      if (clock.has_value()) {
        reference.clockEdge(*clock);
        for (const rtl::SignalId output : outputs) {
          ASSERT_EQ(reference.value(output),
                    traces[static_cast<std::size_t>(vector)][sample++]);
        }
      }
    }
    ASSERT_EQ(sample, traces[static_cast<std::size_t>(vector)].size());
  }
}

TEST(CompiledSimTest, SharedProgramBacksIndependentInstances) {
  const rtl::Module module = makeArithMix(32);
  auto program = std::make_shared<const Program>(Compiler::compile(module));
  CompiledSim first{program};
  CompiledSim second{program};

  const auto a = *module.findSignal("a");
  const auto b = *module.findSignal("b");
  const auto y = *module.findSignal("y");
  first.setValue(a, BitVector{5, 32});
  first.setValue(b, BitVector{7, 32});
  second.setValue(a, BitVector{100, 32});
  second.setValue(b, BitVector{200, 32});
  first.settle();
  second.settle();
  EXPECT_NE(first.value(y), second.value(y));

  Evaluator reference{module};
  reference.setValue(a, BitVector{5, 32});
  reference.setValue(b, BitVector{7, 32});
  reference.settle();
  EXPECT_EQ(reference.value(y), first.value(y));
}

}  // namespace
}  // namespace rtlock::sim
