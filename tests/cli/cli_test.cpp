// CLI dispatch, help and exit-code contract.
//
// Exit codes are load-bearing (scripts branch on them): 0 = success,
// 1 = runtime failure (bad file, parse error), 2 = usage error (unknown
// subcommand/flag, malformed flag value).  These suites pin the mapping.
#include "cli_test_util.hpp"

#include <gtest/gtest.h>

namespace rtlock {
namespace {

using testutil::runCli;

TEST(CliDispatchTest, NoArgumentsPrintsHelpAndFailsUsage) {
  const auto result = runCli({});
  EXPECT_EQ(result.exitCode, cli::kExitUsage);
  EXPECT_NE(result.out.find("usage: rtlock"), std::string::npos);
}

TEST(CliDispatchTest, HelpFlagSucceeds) {
  const auto result = runCli({"--help"});
  EXPECT_EQ(result.exitCode, cli::kExitOk);
  EXPECT_NE(result.out.find("lock"), std::string::npos);
  EXPECT_NE(result.out.find("attack"), std::string::npos);
}

TEST(CliDispatchTest, VersionFlagSucceeds) {
  const auto result = runCli({"--version"});
  EXPECT_EQ(result.exitCode, cli::kExitOk);
  EXPECT_NE(result.out.find("rtlock "), std::string::npos);
}

TEST(CliDispatchTest, PerCommandHelpPrintsUsage) {
  for (const std::string name : {"lock", "attack", "eval", "report", "designs"}) {
    const auto viaHelp = runCli({"help", name});
    EXPECT_EQ(viaHelp.exitCode, cli::kExitOk) << name;
    EXPECT_NE(viaHelp.out.find("usage: rtlock " + name), std::string::npos) << name;
    const auto viaFlag = runCli({name, "--help"});
    EXPECT_EQ(viaFlag.exitCode, cli::kExitOk) << name;
    EXPECT_EQ(viaFlag.out, viaHelp.out) << name;
  }
}

TEST(CliDispatchTest, UnknownCommandFailsUsage) {
  const auto result = runCli({"frobnicate"});
  EXPECT_EQ(result.exitCode, cli::kExitUsage);
  EXPECT_NE(result.err.find("unknown command 'frobnicate'"), std::string::npos);
}

TEST(CliDispatchTest, UnknownFlagFailsUsage) {
  const auto result = runCli({"lock", "in.v", "--no-such-flag"});
  EXPECT_EQ(result.exitCode, cli::kExitUsage);
  EXPECT_NE(result.err.find("--no-such-flag"), std::string::npos);
  EXPECT_NE(result.err.find("usage: rtlock lock"), std::string::npos);
}

TEST(CliDispatchTest, MissingPositionalFailsUsage) {
  EXPECT_EQ(runCli({"lock"}).exitCode, cli::kExitUsage);
  EXPECT_EQ(runCli({"attack"}).exitCode, cli::kExitUsage);
  EXPECT_EQ(runCli({"eval"}).exitCode, cli::kExitUsage);
  EXPECT_EQ(runCli({"report"}).exitCode, cli::kExitUsage);
}

TEST(CliDispatchTest, MalformedFlagValuesFailUsage) {
  EXPECT_EQ(runCli({"lock", "in.v", "--algo=superduper"}).exitCode, cli::kExitUsage);
  EXPECT_EQ(runCli({"lock", "in.v", "--budget=twelve"}).exitCode, cli::kExitUsage);
  EXPECT_EQ(runCli({"lock", "in.v", "--budget=140%"}).exitCode, cli::kExitUsage);
  // Trailing junk must fail loudly, never silently reinterpret the spec.
  EXPECT_EQ(runCli({"lock", "in.v", "--budget=1e2"}).exitCode, cli::kExitUsage);
  EXPECT_EQ(runCli({"lock", "in.v", "--budget=50%x"}).exitCode, cli::kExitUsage);
  EXPECT_EQ(runCli({"attack", "in.v", "--repeats=0"}).exitCode, cli::kExitUsage);
  EXPECT_EQ(runCli({"attack", "in.v", "--folds=1"}).exitCode, cli::kExitUsage);
  EXPECT_EQ(runCli({"eval", "in.v", "--folds=1"}).exitCode, cli::kExitUsage);
  EXPECT_EQ(runCli({"eval", "in.v", "--seeds=bogus"}).exitCode, cli::kExitUsage);
  EXPECT_EQ(runCli({"eval", "in.v", "--sim-backend=quantum"}).exitCode, cli::kExitUsage);
}

TEST(CliDispatchTest, SeedsRejectTrailingJunkAndNegatives) {
  // Regression: stoull-based parsing accepted "--seeds 3x" as seed 3 and
  // wrapped "--seeds -1" to 2^64-1, silently running the wrong campaign.
  // Both must be usage errors (exit 2) naming the offending entry.
  const auto junk = runCli({"eval", "in.v", "--seeds", "3x"});
  EXPECT_EQ(junk.exitCode, cli::kExitUsage);
  EXPECT_NE(junk.err.find("'3x'"), std::string::npos);

  const auto negative = runCli({"eval", "in.v", "--seeds", "-1"});
  EXPECT_EQ(negative.exitCode, cli::kExitUsage);
  EXPECT_NE(negative.err.find("'-1'"), std::string::npos);

  // Same strictness inside lists and ranges.
  EXPECT_EQ(runCli({"eval", "in.v", "--seeds=1,2x,3"}).exitCode, cli::kExitUsage);
  EXPECT_EQ(runCli({"eval", "in.v", "--seeds=5..1x"}).exitCode, cli::kExitUsage);
  EXPECT_EQ(runCli({"eval", "in.v", "--seeds=9..1"}).exitCode, cli::kExitUsage);
}

TEST(CliDispatchTest, IntegerFlagsRejectMalformedValues) {
  EXPECT_EQ(runCli({"lock", "in.v", "--seed=1x"}).exitCode, cli::kExitUsage);
  EXPECT_EQ(runCli({"attack", "in.v", "--seed=-2"}).exitCode, cli::kExitUsage);
  EXPECT_EQ(runCli({"attack", "in.v", "--repeats=2x"}).exitCode, cli::kExitUsage);
  EXPECT_EQ(runCli({"eval", "in.v", "--samples=1x"}).exitCode, cli::kExitUsage);
  EXPECT_EQ(runCli({"eval", "in.v", "--samples=0"}).exitCode, cli::kExitUsage);
  EXPECT_EQ(runCli({"eval", "in.v", "--retries=-1"}).exitCode, cli::kExitUsage);
}

TEST(CliDispatchTest, MissingInputFileIsRuntimeError) {
  const auto result = runCli({"lock", "/nonexistent/input.v"});
  EXPECT_EQ(result.exitCode, cli::kExitError);
  EXPECT_NE(result.err.find("cannot open"), std::string::npos);
}

TEST(CliDispatchTest, MalformedVerilogIsRuntimeErrorWithLocation) {
  const std::string path = ::testing::TempDir() + "cli_malformed.v";
  {
    std::ofstream out{path};
    out << "module broken (a);\n  input a\nendmodule\n";  // missing ';'
  }
  const auto result = runCli({"lock", path});
  EXPECT_EQ(result.exitCode, cli::kExitError);
  EXPECT_NE(result.err.find("line"), std::string::npos);
}

TEST(CliDesignsTest, ListsAllRegistryDesigns) {
  const auto result = runCli({"designs"});
  ASSERT_EQ(result.exitCode, cli::kExitOk);
  for (const std::string name :
       {"DES3", "DFT", "FIR", "IDFT", "IIR", "MD5", "RSA", "SHA256", "SASC", "SIM_SPI", "USB_PHY",
        "I2C_SL", "N_2046", "N_1023"}) {
    EXPECT_NE(result.out.find(name), std::string::npos) << name;
  }
}

TEST(CliDesignsTest, EmitDumpsParseableVerilog) {
  const auto result = runCli({"designs", "--emit=FIR"});
  ASSERT_EQ(result.exitCode, cli::kExitOk);
  EXPECT_NE(result.out.find("module FIR"), std::string::npos);
  const auto unknown = runCli({"designs", "--emit=NOPE"});
  EXPECT_EQ(unknown.exitCode, cli::kExitError);
}

TEST(CliReportTest, RejectsNonReportJson) {
  const std::string path = ::testing::TempDir() + "cli_not_a_report.json";
  {
    std::ofstream out{path};
    out << "{\"hello\": 1}\n";
  }
  const auto result = runCli({"report", path});
  EXPECT_EQ(result.exitCode, cli::kExitError);
  EXPECT_NE(result.err.find("rows"), std::string::npos);
}

}  // namespace
}  // namespace rtlock
