// Shared harness for the CLI suites: runs cli::runCli in-process with
// captured streams — the exact code path of the rtlock binary, minus the
// two-line main() shim.
#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli/cli.hpp"

namespace rtlock::testutil {

struct CliResult {
  int exitCode = 0;
  std::string out;
  std::string err;
};

/// Runs `rtlock <args...>` in-process.
inline CliResult runCli(const std::vector<std::string>& args) {
  std::vector<const char*> argv;
  argv.reserve(args.size() + 1);
  argv.push_back("rtlock");
  for (const std::string& arg : args) argv.push_back(arg.c_str());
  std::ostringstream out;
  std::ostringstream err;
  CliResult result;
  result.exitCode =
      cli::runCli(static_cast<int>(argv.size()), argv.data(), out, err);
  result.out = out.str();
  result.err = err.str();
  return result;
}

inline std::string slurp(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace rtlock::testutil
