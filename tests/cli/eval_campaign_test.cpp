// `rtlock eval` campaign contract: exit codes 3 (partial) and 4
// (interrupted) alongside the established 0/1/2, journal resume producing
// byte-identical reports, --check, --keep-errors, and the usage surface of
// the new flags.  Faults are injected through RTLOCK_FAULT_INJECT — the
// same harness CI's fault-injection job drives from the outside.
#include "cli_test_util.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>

#include "campaign/fault.hpp"
#include "campaign/runner.hpp"

namespace rtlock {
namespace {

using testutil::runCli;
using testutil::slurp;

const std::string kAlu8 = std::string{RTLOCK_EXAMPLES_DIR} + "/external/alu8.v";

/// RAII RTLOCK_FAULT_INJECT so a failing test never leaks faults into the
/// suites that run after it.
class ScopedFaultEnv {
 public:
  explicit ScopedFaultEnv(const std::string& spec) {
    setenv("RTLOCK_FAULT_INJECT", spec.c_str(), 1);
  }
  ~ScopedFaultEnv() { unsetenv("RTLOCK_FAULT_INJECT"); }
};

std::string freshPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "eval_campaign_" + name;
  std::filesystem::remove(path);
  return path;
}

/// The quick 4-cell grid every test here uses (2 algorithms x 2 seeds).
std::vector<std::string> evalArgs(const std::vector<std::string>& extra) {
  std::vector<std::string> args{"eval",        kAlu8,       "--algos=serial,hra", "--seeds=1,2",
                                "--samples=1", "--rounds=20", "--no-wall"};
  args.insert(args.end(), extra.begin(), extra.end());
  return args;
}

TEST(CliEvalCampaignTest, CleanCampaignExitsOk) {
  const auto result = runCli(evalArgs({}));
  EXPECT_EQ(result.exitCode, cli::kExitOk);
  EXPECT_NE(result.out.find("mean_kpa_percent"), std::string::npos);
}

TEST(CliEvalCampaignTest, InjectedThrowFaultExitsPartial) {
  const ScopedFaultEnv fault{"cell:1:throw"};
  const auto result = runCli(evalArgs({"--retries=1"}));
  EXPECT_EQ(result.exitCode, cli::kExitPartial);
  EXPECT_NE(result.err.find("partial campaign: 1 error cell(s)"), std::string::npos);
  EXPECT_NE(result.err.find("injected fault"), std::string::npos);
  // The healthy cells still reported their rows.
  EXPECT_NE(result.out.find("mean_kpa_percent"), std::string::npos);
}

TEST(CliEvalCampaignTest, InjectedHangExitsPartialAsTimeout) {
  const ScopedFaultEnv fault{"cell:0:hang"};
  const auto result = runCli(evalArgs({"--deadline-ms=100"}));
  EXPECT_EQ(result.exitCode, cli::kExitPartial);
  // The hung cell must time out; on a loaded machine other cells can blow
  // the 100ms deadline too, so the exact count is not asserted.
  EXPECT_NE(result.err.find("timeout cell(s)"), std::string::npos);
}

TEST(CliEvalCampaignTest, ShutdownRequestExitsInterrupted) {
  campaign::requestShutdown();  // simulate SIGINT arriving before the grid
  const auto result = runCli(evalArgs({}));
  EXPECT_EQ(result.exitCode, cli::kExitInterrupted);
  EXPECT_NE(result.err.find("interrupted"), std::string::npos);
  // The campaign consumed the drain request on the way out.
  EXPECT_FALSE(campaign::shutdownRequested());
}

TEST(CliEvalCampaignTest, JournalResumeAfterFaultMatchesCleanRun) {
  const std::string journal = freshPath("resume.jsonl");
  const std::string cleanReport = freshPath("clean.json");
  const std::string resumedReport = freshPath("resumed.json");

  const auto clean = runCli(evalArgs({"--report=" + cleanReport}));
  ASSERT_EQ(clean.exitCode, cli::kExitOk);

  {
    const ScopedFaultEnv fault{"cell:2:throw"};
    const auto broken = runCli(evalArgs({"--journal=" + journal, "--retries=0"}));
    ASSERT_EQ(broken.exitCode, cli::kExitPartial);
  }
  // Resume re-runs the error cell (fault cleared) and merges the rest from
  // the journal; table and report must be byte-identical to the clean run.
  const auto resumed =
      runCli(evalArgs({"--journal=" + journal, "--report=" + resumedReport}));
  EXPECT_EQ(resumed.exitCode, cli::kExitOk);
  EXPECT_NE(resumed.err.find("(3 from journal)"), std::string::npos);
  EXPECT_EQ(resumed.out, clean.out);
  EXPECT_EQ(slurp(resumedReport), slurp(cleanReport));
}

TEST(CliEvalCampaignTest, KeepErrorsPreservesJournaledFailures) {
  const std::string journal = freshPath("keep.jsonl");
  {
    const ScopedFaultEnv fault{"cell:0:throw"};
    ASSERT_EQ(runCli(evalArgs({"--journal=" + journal, "--retries=0"})).exitCode,
              cli::kExitPartial);
  }
  // Fault gone, but --keep-errors must trust the journal over recomputing.
  const auto kept = runCli(evalArgs({"--journal=" + journal, "--keep-errors"}));
  EXPECT_EQ(kept.exitCode, cli::kExitPartial);
  EXPECT_NE(kept.err.find("[journaled]"), std::string::npos);
  // Default resume re-runs it and the campaign completes.
  const auto rerun = runCli(evalArgs({"--journal=" + journal}));
  EXPECT_EQ(rerun.exitCode, cli::kExitOk);
}

TEST(CliEvalCampaignTest, CheckRecomputesJournaledCells) {
  const std::string journal = freshPath("check.jsonl");
  ASSERT_EQ(runCli(evalArgs({"--journal=" + journal})).exitCode, cli::kExitOk);
  const auto checked =
      runCli(evalArgs({"--journal=" + journal, "--check", "--check-cells=2"}));
  EXPECT_EQ(checked.exitCode, cli::kExitOk);
  EXPECT_NE(checked.err.find("check: 2 cell(s) recomputed, all byte-identical"),
            std::string::npos);
}

TEST(CliEvalCampaignTest, MismatchedJournalIdentityIsRuntimeError) {
  const std::string journal = freshPath("identity.jsonl");
  ASSERT_EQ(runCli(evalArgs({"--journal=" + journal})).exitCode, cli::kExitOk);
  // Same journal, different config (rounds): the identity hash differs and
  // the resume must refuse instead of merging unrelated rows.
  const auto clash = runCli({"eval", kAlu8, "--algos=serial,hra", "--seeds=1,2", "--samples=1",
                             "--rounds=25", "--no-wall", "--journal=" + journal});
  EXPECT_EQ(clash.exitCode, cli::kExitError);
  EXPECT_NE(clash.err.find("different campaign"), std::string::npos);
}

TEST(CliEvalCampaignTest, NewFlagUsageErrors) {
  EXPECT_EQ(runCli(evalArgs({"--check"})).exitCode, cli::kExitUsage);  // no --journal
  EXPECT_EQ(runCli(evalArgs({"--retries=-1"})).exitCode, cli::kExitUsage);
  EXPECT_EQ(runCli(evalArgs({"--deadline-ms=-5"})).exitCode, cli::kExitUsage);
  const ScopedFaultEnv fault{"cell:0:explode"};
  const auto badFault = runCli(evalArgs({}));
  EXPECT_EQ(badFault.exitCode, cli::kExitUsage);
  EXPECT_NE(badFault.err.find("RTLOCK_FAULT_INJECT"), std::string::npos);
}

}  // namespace
}  // namespace rtlock
