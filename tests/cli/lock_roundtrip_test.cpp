// CLI lock round-trips on the external (non-registry) fixtures:
// lock -> parse the emitted netlist back -> prove RTL equivalence against
// the original under the correct key, and corruption under a wrong key.
//
// This is the tool-level counterpart of the library's functional
// preservation suite: it additionally covers file I/O, the key/provenance
// JSON, and the parser constructs only external Verilog exercises
// (parameters, ANSI carry-over, wire initializers).
#include "cli_test_util.hpp"

#include <gtest/gtest.h>

#include "cli/common.hpp"
#include "sim/harness.hpp"
#include "verilog/parser.hpp"
#include "verilog/writer.hpp"

namespace rtlock {
namespace {

using testutil::runCli;
using testutil::slurp;

constexpr const char* kAlu8 = RTLOCK_EXAMPLES_DIR "/external/alu8.v";
constexpr const char* kConv3 = RTLOCK_EXAMPLES_DIR "/external/conv3.v";

struct LockedFixture {
  rtl::Module original;
  rtl::Module locked;
  cli::KeyFile keyFile;
};

LockedFixture lockFixture(const std::string& inputPath, const std::string& tag,
                          const std::string& algo, const std::string& budget) {
  const std::string lockedPath = ::testing::TempDir() + tag + ".locked.v";
  const std::string keyPath = ::testing::TempDir() + tag + ".key.json";
  const auto result = runCli({"lock", inputPath, "--algo=" + algo, "--budget=" + budget,
                              "--seed=7", "--out=" + lockedPath, "--key-out=" + keyPath});
  EXPECT_EQ(result.exitCode, cli::kExitOk) << result.err;

  rtl::Design originalDesign = verilog::parseDesign(slurp(inputPath));
  rtl::Design lockedDesign = verilog::parseDesign(slurp(lockedPath));
  EXPECT_EQ(lockedDesign.moduleCount(), originalDesign.moduleCount());
  return LockedFixture{originalDesign.module(0).clone(), lockedDesign.module(0).clone(),
                       cli::keyFileFromJson(support::parseJson(slurp(keyPath)))};
}

sim::BitVector keyFromFile(const cli::ModuleKey& moduleKey) {
  sim::BitVector key{moduleKey.keyWidth};
  for (int i = 0; i < moduleKey.keyWidth; ++i) {
    key.setBit(i, moduleKey.keyBits[static_cast<std::size_t>(i)] == '1');
  }
  return key;
}

TEST(CliLockRoundTripTest, Alu8EquivalentUnderCorrectKeyCorruptUnderWrongKey) {
  const LockedFixture fixture = lockFixture(kAlu8, "rt_alu8", "hra", "50%");
  ASSERT_EQ(fixture.keyFile.modules.size(), 1u);
  const cli::ModuleKey& moduleKey = fixture.keyFile.modules.front();
  EXPECT_EQ(moduleKey.module, "alu8");
  EXPECT_EQ(fixture.locked.keyWidth(), moduleKey.keyWidth);
  EXPECT_GT(moduleKey.keyWidth, 0);
  EXPECT_EQ(moduleKey.records.size(), static_cast<std::size_t>(moduleKey.bitsUsed));

  const sim::BitVector key = keyFromFile(moduleKey);
  support::Rng rng{11};
  EXPECT_TRUE(sim::functionallyEquivalent(fixture.original, fixture.locked, key, {}, rng));

  // Key bit 0 guards an eq/ne pair feeding an output: flipping it must
  // corrupt behaviour under any stimulus.
  sim::BitVector wrong = key;
  wrong.setBit(0, !wrong.bit(0));
  support::Rng rng2{12};
  EXPECT_FALSE(sim::functionallyEquivalent(fixture.original, fixture.locked, wrong, {}, rng2));
}

TEST(CliLockRoundTripTest, SequentialConv3EquivalentUnderCorrectKey) {
  const LockedFixture fixture = lockFixture(kConv3, "rt_conv3", "era", "75%");
  ASSERT_EQ(fixture.keyFile.modules.size(), 1u);
  const sim::BitVector key = keyFromFile(fixture.keyFile.modules.front());
  support::Rng rng{13};
  sim::EquivalenceOptions options;
  options.cyclesPerVector = 6;  // drive the delay line through full depth
  EXPECT_TRUE(sim::functionallyEquivalent(fixture.original, fixture.locked, key, options, rng));
}

TEST(CliLockRoundTripTest, LockedNetlistReparsesToIdenticalText) {
  const LockedFixture fixture = lockFixture(kAlu8, "rt_alu8_idem", "era", "75%");
  const std::string once = verilog::writeModule(fixture.locked);
  const std::string twice = verilog::writeModule(verilog::parseModule(once));
  EXPECT_EQ(once, twice);
}

TEST(CliLockRoundTripTest, SameSeedIsBitIdenticalAcrossRuns) {
  const std::string a = ::testing::TempDir() + "det_a.locked.v";
  const std::string b = ::testing::TempDir() + "det_b.locked.v";
  const std::string keyA = ::testing::TempDir() + "det_a.key.json";
  const std::string keyB = ::testing::TempDir() + "det_b.key.json";
  ASSERT_EQ(runCli({"lock", kAlu8, "--algo=hra", "--seed=42", "--out=" + a, "--key-out=" + keyA})
                .exitCode,
            cli::kExitOk);
  ASSERT_EQ(runCli({"lock", kAlu8, "--algo=hra", "--seed=42", "--out=" + b, "--key-out=" + keyB})
                .exitCode,
            cli::kExitOk);
  EXPECT_EQ(slurp(a), slurp(b));
  EXPECT_EQ(slurp(keyA), slurp(keyB));
  EXPECT_FALSE(slurp(a).empty());
}

TEST(CliLockRoundTripTest, RefusesToRelockAnAlreadyLockedNetlist) {
  // A relock's key file could not state the pre-existing key bits — an
  // unusable, silently-corrupting key string — so the tool refuses.
  const std::string lockedPath = ::testing::TempDir() + "relock.locked.v";
  const std::string keyPath = ::testing::TempDir() + "relock.key.json";
  ASSERT_EQ(runCli({"lock", kAlu8, "--out=" + lockedPath, "--key-out=" + keyPath}).exitCode,
            cli::kExitOk);
  const auto relock = runCli({"lock", lockedPath, "--out=" + lockedPath + "2",
                              "--key-out=" + keyPath + "2"});
  EXPECT_EQ(relock.exitCode, cli::kExitError);
  EXPECT_NE(relock.err.find("already carries"), std::string::npos);
}

TEST(CliLockRoundTripTest, AbsoluteBudgetLocksExactly) {
  const std::string lockedPath = ::testing::TempDir() + "abs.locked.v";
  const std::string keyPath = ::testing::TempDir() + "abs.key.json";
  ASSERT_EQ(runCli({"lock", kAlu8, "--algo=random", "--budget=3", "--out=" + lockedPath,
                    "--key-out=" + keyPath})
                .exitCode,
            cli::kExitOk);
  const cli::KeyFile keyFile = cli::keyFileFromJson(support::parseJson(slurp(keyPath)));
  ASSERT_EQ(keyFile.modules.size(), 1u);
  EXPECT_EQ(keyFile.modules.front().bitsUsed, 3);
}

}  // namespace
}  // namespace rtlock
