// `rtlock lint` end to end: text/JSON/report artifacts, the artificially
// dead key bit acceptance case, and exit-code mapping.
#include <gtest/gtest.h>

#include <fstream>

#include "cli_test_util.hpp"
#include "support/json.hpp"

namespace rtlock::cli {
namespace {

using testutil::runCli;
using testutil::slurp;

/// A locked netlist whose key bit 1 drives a wire nothing reads: statically
/// dead, so lint must prove it free.  Bit 0 guards the output path.
constexpr const char* kDeadBitNetlist = R"(
module deadbit (input [7:0] a, input [7:0] b, input [1:0] lock_key,
                output [7:0] y);
  wire [7:0] dead;
  assign y = lock_key[0] ? (a + b) : (a - b);
  assign dead = lock_key[1] ? (a ^ b) : (a & b);
endmodule
)";

[[nodiscard]] std::string writeNetlist(const std::string& name, const std::string& text) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out{path};
  out << text;
  return path;
}

TEST(LintCommandTest, ReportsArtificiallyDeadKeyBit) {
  const std::string path = writeNetlist("lint_deadbit.v", kDeadBitNetlist);
  const auto result = runCli({"lint", path, "--no-wall"});
  EXPECT_EQ(result.exitCode, 0);
  EXPECT_NE(result.out.find("L201"), std::string::npos) << result.out;
  EXPECT_NE(result.out.find("key bit 1"), std::string::npos) << result.out;
  EXPECT_NE(result.out.find("free_key_bits"), std::string::npos);
}

TEST(LintCommandTest, JsonReportFollowsRowSchema) {
  const std::string path = writeNetlist("lint_deadbit_json.v", kDeadBitNetlist);
  const std::string reportPath = ::testing::TempDir() + "lint_report.json";
  const auto result = runCli({"lint", path, "--json", "--no-wall", "--report=" + reportPath});
  ASSERT_EQ(result.exitCode, 0);

  // stdout --json document and the --report file carry the same schema.
  for (const std::string& text : {result.out, slurp(reportPath)}) {
    const support::JsonValue document = support::parseJson(text);
    EXPECT_EQ(document.at("schema").asString(), "rtlock-lint-report/v1");
    double freeBits = -1.0;
    for (const auto& row : document.at("rows").asArray()) {
      EXPECT_TRUE(row.find("bench") != nullptr);
      EXPECT_TRUE(row.find("config") != nullptr);
      EXPECT_TRUE(row.find("metric") != nullptr);
      EXPECT_TRUE(row.find("value") != nullptr);
      EXPECT_TRUE(row.find("wall_ms") != nullptr);
      if (row.at("metric").asString() == "free_key_bits") {
        freeBits = row.at("value").asDouble();
      }
    }
    EXPECT_EQ(freeBits, 1.0);
    bool sawL201 = false;
    for (const auto& finding : document.at("findings").asArray()) {
      if (finding.at("code").asString() == "L201") sawL201 = true;
    }
    EXPECT_TRUE(sawL201);
  }
}

TEST(LintCommandTest, RowsRenderableByReportCommand) {
  const std::string path = writeNetlist("lint_deadbit_rows.v", kDeadBitNetlist);
  const std::string reportPath = ::testing::TempDir() + "lint_rows.json";
  ASSERT_EQ(runCli({"lint", path, "--no-wall", "--report=" + reportPath}).exitCode, 0);
  const auto rendered = runCli({"report", reportPath, "--metric=free_key_bits"});
  EXPECT_EQ(rendered.exitCode, 0);
  EXPECT_NE(rendered.out.find("free_key_bits"), std::string::npos) << rendered.out;
}

TEST(LintCommandTest, CleanLockChainReportsNoRemovableMuxes) {
  // designs -> lock -> lint: the shipped locking pipeline must never produce
  // statically removable key logic.
  const std::string designPath = ::testing::TempDir() + "lint_sasc.v";
  {
    const auto emitted = runCli({"designs", "--emit=SASC"});
    ASSERT_EQ(emitted.exitCode, 0);
    std::ofstream out{designPath};
    out << emitted.out;
  }
  const std::string lockedPath = ::testing::TempDir() + "lint_sasc.locked.v";
  const std::string keyPath = ::testing::TempDir() + "lint_sasc.key.json";
  ASSERT_EQ(runCli({"lock", designPath, "--algo=era", "--budget=50%", "--seed=7",
                    "--out=" + lockedPath, "--key-out=" + keyPath})
                .exitCode,
            0);
  const auto result = runCli({"lint", lockedPath, "--csv", "--no-wall"});
  ASSERT_EQ(result.exitCode, 0);
  EXPECT_NE(result.out.find("constant_select_muxes,0"), std::string::npos) << result.out;
  EXPECT_NE(result.out.find("identical_arm_muxes,0"), std::string::npos) << result.out;
  EXPECT_NE(result.out.find("verifier_errors,0"), std::string::npos) << result.out;
}

TEST(LintCommandTest, StructurallyBrokenInputFailsAtParse) {
  // The always-on front-end verifier rejects a combinational loop before the
  // lint pass ever runs: runtime error (exit 1), message naming V111.
  const std::string path = writeNetlist("lint_loop.v", R"(
    module loop (input [3:0] a, output [3:0] y);
      wire [3:0] u, v;
      assign u = v + a;
      assign v = u + 4'd1;
      assign y = v;
    endmodule
  )");
  const auto result = runCli({"lint", path});
  EXPECT_EQ(result.exitCode, 1);
  EXPECT_NE(result.err.find("V111"), std::string::npos) << result.err;
}

TEST(LintCommandTest, UnknownFlagFailsUsage) {
  const auto result = runCli({"lint", "whatever.v", "--bogus"});
  EXPECT_EQ(result.exitCode, 2);
  EXPECT_NE(result.err.find("usage: rtlock lint"), std::string::npos);
}

}  // namespace
}  // namespace rtlock::cli
