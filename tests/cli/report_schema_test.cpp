// Attack/eval report schema goldens and thread-count invariance at the tool
// boundary.
//
// The row schema ({bench, config, metric, value, wall_ms}) is shared with
// BENCH_baseline.json — external tooling parses both — so its shape is
// pinned here key-by-key.  With --no-wall the whole report file must be
// byte-identical across --threads values: that is the CLI-level restatement
// of the experiment engine's determinism contract.
#include "cli_test_util.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "cli/common.hpp"
#include "support/json.hpp"

namespace rtlock {
namespace {

using testutil::runCli;
using testutil::slurp;

constexpr const char* kConv3 = RTLOCK_EXAMPLES_DIR "/external/conv3.v";

/// Locks conv3 once per suite run; returns (locked path, key path).
std::pair<std::string, std::string> lockedConv3() {
  const std::string lockedPath = ::testing::TempDir() + "schema_conv3.locked.v";
  const std::string keyPath = ::testing::TempDir() + "schema_conv3.key.json";
  const auto result = runCli({"lock", kConv3, "--algo=era", "--seed=5", "--out=" + lockedPath,
                              "--key-out=" + keyPath});
  EXPECT_EQ(result.exitCode, cli::kExitOk) << result.err;
  return {lockedPath, keyPath};
}

std::string runAttackReport(const std::string& lockedPath, const std::string& keyPath,
                            const std::string& tag, const std::string& threads) {
  const std::string reportPath = ::testing::TempDir() + "attack_" + tag + ".json";
  const auto result =
      runCli({"attack", lockedPath, "--key=" + keyPath, "--rounds=60", "--repeats=2",
              "--seed=3", "--threads=" + threads, "--no-wall", "--report=" + reportPath});
  EXPECT_EQ(result.exitCode, cli::kExitOk) << result.err;
  return reportPath;
}

TEST(CliReportSchemaTest, AttackReportMatchesGoldenShape) {
  const auto [lockedPath, keyPath] = lockedConv3();
  const std::string reportPath = runAttackReport(lockedPath, keyPath, "golden", "1");
  const support::JsonValue report = support::parseJson(slurp(reportPath));

  EXPECT_EQ(report.at("schema").asString(), "rtlock-attack-report/v1");
  EXPECT_EQ(report.at("module").asString(), "conv3");
  EXPECT_EQ(report.at("seed").asInt(), 3);
  EXPECT_TRUE(report.at("scored").asBool());

  const support::JsonArray& attacks = report.at("attacks").asArray();
  ASSERT_EQ(attacks.size(), 2u);
  for (const support::JsonValue& attack : attacks) {
    EXPECT_TRUE(attack.find("repeat") != nullptr);
    EXPECT_FALSE(attack.at("model").asString().empty());
    EXPECT_GE(attack.at("cv_accuracy").asDouble(), 0.0);
    EXPECT_GE(attack.at("kpa_percent").asDouble(), 0.0);
    // One '0'/'1' prediction per attacked key bit.
    const std::string& predictions = attack.at("predictions").asString();
    EXPECT_FALSE(predictions.empty());
    for (const char c : predictions) EXPECT_TRUE(c == '0' || c == '1');
  }

  // Row objects carry exactly the baseline schema keys, in its order.
  const support::JsonArray& rows = report.at("rows").asArray();
  ASSERT_FALSE(rows.empty());
  std::vector<std::string> metrics;
  for (const support::JsonValue& row : rows) {
    const support::JsonObject& object = row.asObject();
    ASSERT_EQ(object.size(), 5u);
    EXPECT_EQ(object[0].first, "bench");
    EXPECT_EQ(object[1].first, "config");
    EXPECT_EQ(object[2].first, "metric");
    EXPECT_EQ(object[3].first, "value");
    EXPECT_EQ(object[4].first, "wall_ms");
    EXPECT_EQ(row.at("bench").asString(), "conv3");
    EXPECT_EQ(row.at("wall_ms").asDouble(), 0.0);  // --no-wall
    metrics.push_back(row.at("metric").asString());
  }
  for (const std::string wanted : {"kpa_percent", "mean_kpa_percent", "key_bits",
                                   "mean_training_rows", "mean_cv_accuracy_percent"}) {
    EXPECT_NE(std::find(metrics.begin(), metrics.end(), wanted), metrics.end()) << wanted;
  }
}

TEST(CliReportSchemaTest, AttackReportBitIdenticalAcrossThreadCounts) {
  const auto [lockedPath, keyPath] = lockedConv3();
  const std::string serial = runAttackReport(lockedPath, keyPath, "t1", "1");
  const std::string fourWay = runAttackReport(lockedPath, keyPath, "t4", "4");
  const std::string hardware = runAttackReport(lockedPath, keyPath, "thw", "0");
  EXPECT_EQ(slurp(serial), slurp(fourWay));
  EXPECT_EQ(slurp(serial), slurp(hardware));
  EXPECT_FALSE(slurp(serial).empty());
}

TEST(CliReportSchemaTest, EvalReportBitIdenticalAcrossThreadCounts) {
  auto evalReport = [&](const std::string& tag, const std::string& threads) {
    const std::string reportPath = ::testing::TempDir() + "eval_" + tag + ".json";
    const auto result =
        runCli({"eval", kConv3, "--algos=hra,era", "--seeds=1..2", "--samples=1", "--rounds=30",
                "--threads=" + threads, "--no-wall", "--report=" + reportPath});
    EXPECT_EQ(result.exitCode, cli::kExitOk) << result.err;
    return reportPath;
  };
  const std::string serial = evalReport("t1", "1");
  const std::string fourWay = evalReport("t4", "4");
  const std::string hardware = evalReport("thw", "0");
  EXPECT_EQ(slurp(serial), slurp(fourWay));
  EXPECT_EQ(slurp(serial), slurp(hardware));

  const support::JsonValue report = support::parseJson(slurp(serial));
  EXPECT_EQ(report.at("schema").asString(), "rtlock-eval-report/v1");
  // 2 algos x 2 seeds x 6 per-cell rows + 2 per-algo aggregates.
  EXPECT_EQ(report.at("rows").asArray().size(), 26u);
}

TEST(CliReportSchemaTest, ReportCommandRendersAttackReportCsv) {
  const auto [lockedPath, keyPath] = lockedConv3();
  const std::string reportPath = runAttackReport(lockedPath, keyPath, "csv", "1");
  const auto result = runCli({"report", reportPath, "--csv", "--metric=mean_kpa_percent"});
  ASSERT_EQ(result.exitCode, cli::kExitOk) << result.err;
  EXPECT_NE(result.out.find("bench,config,metric,value,wall_ms"), std::string::npos);
  EXPECT_NE(result.out.find("mean_kpa_percent"), std::string::npos);
}

TEST(CliReportSchemaTest, UnscoredAttackOmitsKpaRows) {
  const auto [lockedPath, keyPath] = lockedConv3();
  (void)keyPath;
  const std::string reportPath = ::testing::TempDir() + "attack_unscored.json";
  const auto result = runCli({"attack", lockedPath, "--rounds=40", "--no-wall",
                              "--report=" + reportPath});
  ASSERT_EQ(result.exitCode, cli::kExitOk) << result.err;
  const support::JsonValue report = support::parseJson(slurp(reportPath));
  EXPECT_FALSE(report.at("scored").asBool());
  for (const support::JsonValue& row : report.at("rows").asArray()) {
    EXPECT_EQ(row.at("metric").asString().find("kpa"), std::string::npos);
  }
  for (const support::JsonValue& attack : report.at("attacks").asArray()) {
    EXPECT_EQ(attack.find("kpa_percent"), nullptr);
  }
}

}  // namespace
}  // namespace rtlock
