#include "rtl/builder.hpp"

#include <gtest/gtest.h>

namespace rtlock::rtl {
namespace {

TEST(BuilderTest, CombinationalChain) {
  ModuleBuilder b{"chain"};
  const auto a = b.input("a", 8);
  const auto c = b.input("b", 8);
  const auto w = b.wire("w", 8);
  const auto y = b.output("y", 8);
  b.assign(w, b.add(b.ref(a), b.ref(c)));
  b.assign(y, b.mul(b.ref(w), b.lit(3, 8)));
  const Module m = b.take();
  EXPECT_EQ(m.contAssigns().size(), 2u);
  EXPECT_EQ(m.contAssigns()[0]->value().kind(), ExprKind::Binary);
}

TEST(BuilderTest, RegAssignCreatesOneProcessPerClock) {
  ModuleBuilder b{"seq"};
  const auto clk = b.input("clk", 1);
  const auto d = b.input("d", 4);
  const auto q0 = b.reg("q0", 4);
  const auto q1 = b.reg("q1", 4);
  b.regAssign(clk, q0, b.ref(d));
  b.regAssign(clk, q1, b.ref(q0));
  const Module m = b.take();
  ASSERT_EQ(m.processes().size(), 1u);
  EXPECT_EQ(m.processes()[0]->kind, ProcessKind::Sequential);
  EXPECT_EQ(m.processes()[0]->clock, clk);
  EXPECT_EQ(static_cast<const BlockStmt&>(*m.processes()[0]->body).size(), 2);
}

TEST(BuilderTest, TwoClocksTwoProcesses) {
  ModuleBuilder b{"dualclk"};
  const auto clkA = b.input("clk_a", 1);
  const auto clkB = b.input("clk_b", 1);
  const auto d = b.input("d", 4);
  const auto qa = b.reg("qa", 4);
  const auto qb = b.reg("qb", 4);
  b.regAssign(clkA, qa, b.ref(d));
  b.regAssign(clkB, qb, b.ref(d));
  const Module m = b.take();
  EXPECT_EQ(m.processes().size(), 2u);
}

TEST(BuilderTest, SliceAndConcatHelpers) {
  ModuleBuilder b{"bits"};
  const auto x = b.input("x", 8);
  const auto y = b.output("y", 8);
  std::vector<ExprPtr> parts;
  parts.push_back(b.slice(b.ref(x), 3, 0));
  parts.push_back(b.slice(b.ref(x), 7, 4));
  b.assign(y, b.concat(std::move(parts)));
  const Module m = b.take();
  EXPECT_EQ(m.contAssigns()[0]->value().width(), 8);
}

TEST(BuilderTest, MuxHelper) {
  ModuleBuilder b{"muxer"};
  const auto s = b.input("s", 1);
  const auto p = b.input("p", 8);
  const auto q = b.input("q", 8);
  const auto y = b.output("y", 8);
  b.assign(y, b.mux(b.ref(s), b.ref(p), b.ref(q)));
  const Module m = b.take();
  EXPECT_EQ(m.contAssigns()[0]->value().kind(), ExprKind::Ternary);
}

TEST(BuilderTest, AssignSlice) {
  ModuleBuilder b{"partial"};
  const auto x = b.input("x", 4);
  const auto y = b.output("y", 8);
  b.assignSlice(y, 3, 0, b.ref(x));
  b.assignSlice(y, 7, 4, b.notE(b.ref(x)));
  const Module m = b.take();
  ASSERT_EQ(m.contAssigns().size(), 2u);
  EXPECT_EQ(m.contAssigns()[0]->target().range, std::make_pair(3, 0));
}

}  // namespace
}  // namespace rtlock::rtl
