#include "rtl/stats.hpp"

#include <gtest/gtest.h>

#include "rtl/builder.hpp"
#include "rtl/traverse.hpp"

namespace rtlock::rtl {
namespace {

Module sampleModule() {
  ModuleBuilder b{"sample"};
  const auto a = b.input("a", 8);
  const auto c = b.input("b", 8);
  const auto w0 = b.wire("w0", 8);
  const auto w1 = b.wire("w1", 8);
  const auto y = b.output("y", 8);
  b.assign(w0, b.add(b.ref(a), b.ref(c)));
  b.assign(w1, b.sub(b.ref(w0), b.mul(b.ref(a), b.ref(c))));
  b.assign(y, b.mux(b.bin(OpKind::Gt, b.ref(w0), b.ref(w1)), b.ref(w0), b.ref(w1)));
  return b.take();
}

TEST(StatsTest, CountsPerKind) {
  const Module m = sampleModule();
  const OpCounts counts = countOps(m);
  EXPECT_EQ(counts.of(OpKind::Add), 1);
  EXPECT_EQ(counts.of(OpKind::Sub), 1);
  EXPECT_EQ(counts.of(OpKind::Mul), 1);
  EXPECT_EQ(counts.of(OpKind::Gt), 1);
  EXPECT_EQ(counts.of(OpKind::Div), 0);
  EXPECT_EQ(counts.total(), 4);
}

TEST(StatsTest, CountsIncludeStatementExpressions) {
  ModuleBuilder b{"seq"};
  const auto clk = b.input("clk", 1);
  const auto d = b.input("d", 8);
  const auto q = b.reg("q", 8);
  b.regAssign(clk, q, b.add(b.ref(q), b.ref(d)));
  const Module m = b.take();
  EXPECT_EQ(countOps(m).of(OpKind::Add), 1);
}

TEST(StatsTest, ModuleStatsFields) {
  const Module m = sampleModule();
  const ModuleStats stats = computeStats(m);
  EXPECT_EQ(stats.signals, 5);
  EXPECT_EQ(stats.ports, 3);
  EXPECT_EQ(stats.contAssigns, 3);
  EXPECT_EQ(stats.processes, 0);
  EXPECT_EQ(stats.binaryOps, 4);
  EXPECT_EQ(stats.keyMuxes, 0);
  EXPECT_EQ(stats.keyWidth, 0);
  EXPECT_GE(stats.maxExprDepth, 2);
}

TEST(StatsTest, KeyMuxCounting) {
  ModuleBuilder b{"locked"};
  const auto a = b.input("a", 8);
  const auto y = b.output("y", 8);
  b.assign(y, b.mux(makeKeyRef(0), b.add(b.ref(a), b.lit(1, 8)),
                    b.sub(b.ref(a), b.lit(1, 8))));
  Module m = b.take();
  m.allocateKeyBits(1);
  const ModuleStats stats = computeStats(m);
  EXPECT_EQ(stats.keyMuxes, 1);
  EXPECT_EQ(stats.keyWidth, 1);
}

TEST(StatsTest, TraversalVisitsEverySlotOnce) {
  Module m = sampleModule();
  int slots = 0;
  forEachExprSlot(m, [&slots](const ExprSlot&) { ++slots; });
  int exprs = 0;
  forEachExpr(m, [&exprs](const Expr&) { ++exprs; });
  EXPECT_EQ(slots, exprs);
  EXPECT_GT(slots, 10);
}

TEST(StatsTest, OpCountsEquality) {
  const Module m = sampleModule();
  EXPECT_EQ(countOps(m), countOps(m));
  EXPECT_FALSE(countOps(m) == OpCounts{});
}

}  // namespace
}  // namespace rtlock::rtl
