#include "rtl/ops.hpp"

#include <gtest/gtest.h>

namespace rtlock::rtl {
namespace {

TEST(OpsTest, TokensMatchVerilogSpelling) {
  EXPECT_EQ(opToken(OpKind::Add), "+");
  EXPECT_EQ(opToken(OpKind::Pow), "**");
  EXPECT_EQ(opToken(OpKind::AShr), ">>>");
  EXPECT_EQ(opToken(OpKind::Xnor), "~^");
  EXPECT_EQ(opToken(OpKind::LOr), "||");
}

TEST(OpsTest, NamesRoundTrip) {
  for (int k = 0; k < kOpKindCount; ++k) {
    const auto kind = static_cast<OpKind>(k);
    const auto parsed = opFromName(opName(kind));
    ASSERT_TRUE(parsed.has_value()) << opName(kind);
    EXPECT_EQ(*parsed, kind);
  }
}

TEST(OpsTest, UnknownNameIsEmpty) { EXPECT_FALSE(opFromName("bogus").has_value()); }

TEST(OpsTest, ComparisonClassification) {
  EXPECT_TRUE(isComparison(OpKind::Lt));
  EXPECT_TRUE(isComparison(OpKind::Ne));
  EXPECT_FALSE(isComparison(OpKind::Add));
  EXPECT_FALSE(isComparison(OpKind::LAnd));
}

TEST(OpsTest, LogicalClassification) {
  EXPECT_TRUE(isLogical(OpKind::LAnd));
  EXPECT_TRUE(isLogical(OpKind::LOr));
  EXPECT_FALSE(isLogical(OpKind::And));
}

TEST(OpsTest, ShiftClassification) {
  EXPECT_TRUE(isShift(OpKind::Shl));
  EXPECT_TRUE(isShift(OpKind::Shr));
  EXPECT_TRUE(isShift(OpKind::AShr));
  EXPECT_FALSE(isShift(OpKind::Mul));
}

TEST(OpsTest, ResultWidthRules) {
  EXPECT_EQ(resultWidth(OpKind::Add, 8, 16), 16);
  EXPECT_EQ(resultWidth(OpKind::Mul, 32, 4), 32);
  EXPECT_EQ(resultWidth(OpKind::Shl, 8, 3), 8);
  EXPECT_EQ(resultWidth(OpKind::Lt, 8, 16), 1);
  EXPECT_EQ(resultWidth(OpKind::LAnd, 8, 8), 1);
  EXPECT_EQ(resultWidth(OpKind::Eq, 64, 64), 1);
  EXPECT_EQ(resultWidth(OpKind::Pow, 16, 4), 16);
}

TEST(OpsTest, UnaryResultWidths) {
  EXPECT_EQ(unaryResultWidth(UnaryOp::Neg, 8), 8);
  EXPECT_EQ(unaryResultWidth(UnaryOp::BitNot, 16), 16);
  EXPECT_EQ(unaryResultWidth(UnaryOp::LogNot, 16), 1);
  EXPECT_EQ(unaryResultWidth(UnaryOp::RedXor, 32), 1);
}

TEST(OpsTest, PrecedenceOrdering) {
  // Verilog: ** > */% > +- > shifts > compares > ==/!= > & > ^ > | > && > ||
  EXPECT_GT(opPrecedence(OpKind::Pow), opPrecedence(OpKind::Mul));
  EXPECT_GT(opPrecedence(OpKind::Mul), opPrecedence(OpKind::Add));
  EXPECT_GT(opPrecedence(OpKind::Add), opPrecedence(OpKind::Shl));
  EXPECT_GT(opPrecedence(OpKind::Shl), opPrecedence(OpKind::Lt));
  EXPECT_GT(opPrecedence(OpKind::Lt), opPrecedence(OpKind::Eq));
  EXPECT_GT(opPrecedence(OpKind::Eq), opPrecedence(OpKind::And));
  EXPECT_GT(opPrecedence(OpKind::And), opPrecedence(OpKind::Xor));
  EXPECT_GT(opPrecedence(OpKind::Xor), opPrecedence(OpKind::Or));
  EXPECT_GT(opPrecedence(OpKind::Or), opPrecedence(OpKind::LAnd));
  EXPECT_GT(opPrecedence(OpKind::LAnd), opPrecedence(OpKind::LOr));
}

}  // namespace
}  // namespace rtlock::rtl
