#include "rtl/expr.hpp"

#include <gtest/gtest.h>

#include "support/diagnostics.hpp"

namespace rtlock::rtl {
namespace {

TEST(ExprTest, ConstantMasksToWidth) {
  const auto c = makeConstant(0xFFFF, 8);
  EXPECT_EQ(static_cast<const ConstantExpr&>(*c).value(), 0xFFu);
  EXPECT_EQ(c->width(), 8);
}

TEST(ExprTest, ConstantWiderThan64Throws) {
  EXPECT_THROW(makeConstant(1, 65), support::ContractViolation);
}

TEST(ExprTest, BinaryWidthFollowsRules) {
  auto sum = makeBinary(OpKind::Add, makeConstant(1, 8), makeConstant(2, 16));
  EXPECT_EQ(sum->width(), 16);
  auto cmp = makeBinary(OpKind::Lt, makeConstant(1, 8), makeConstant(2, 16));
  EXPECT_EQ(cmp->width(), 1);
  auto shift = makeBinary(OpKind::Shl, makeConstant(1, 8), makeConstant(2, 16));
  EXPECT_EQ(shift->width(), 8);
}

TEST(ExprTest, TernaryWidthIsMaxOfBranches) {
  auto mux = makeTernary(makeConstant(1, 1), makeConstant(0, 8), makeConstant(0, 12));
  EXPECT_EQ(mux->width(), 12);
}

TEST(ExprTest, ConcatWidthIsSum) {
  std::vector<ExprPtr> parts;
  parts.push_back(makeConstant(1, 8));
  parts.push_back(makeConstant(2, 4));
  parts.push_back(makeConstant(3, 1));
  EXPECT_EQ(makeConcat(std::move(parts))->width(), 13);
}

TEST(ExprTest, SliceWidthAndBoundsChecks) {
  auto slice = makeSlice(makeSignalRef(0, 16), 7, 4);
  EXPECT_EQ(slice->width(), 4);
  EXPECT_THROW(makeSlice(makeSignalRef(0, 8), 8, 0), support::ContractViolation);
  EXPECT_THROW(makeSlice(makeSignalRef(0, 8), 2, 3), support::ContractViolation);
}

TEST(ExprTest, KeyMuxDetection) {
  auto keyMux = makeTernary(makeKeyRef(3), makeConstant(1, 8), makeConstant(2, 8));
  EXPECT_TRUE(static_cast<const TernaryExpr&>(*keyMux).isKeyMux());
  auto designMux = makeTernary(makeSignalRef(0, 1), makeConstant(1, 8), makeConstant(2, 8));
  EXPECT_FALSE(static_cast<const TernaryExpr&>(*designMux).isKeyMux());
  // Multi-bit key chunks (constant obfuscation) are not locking muxes.
  auto chunkMux = makeTernary(makeKeyRef(0, 4), makeConstant(1, 8), makeConstant(2, 8));
  EXPECT_FALSE(static_cast<const TernaryExpr&>(*chunkMux).isKeyMux());
}

TEST(ExprTest, CloneIsDeepAndEqual) {
  auto original = makeBinary(
      OpKind::Add, makeBinary(OpKind::Mul, makeSignalRef(1, 8), makeConstant(3, 8)),
      makeTernary(makeKeyRef(0), makeSignalRef(2, 8), makeConstant(7, 8)));
  auto copy = original->clone();
  EXPECT_TRUE(structurallyEqual(*original, *copy));
  // Mutating the copy must not affect the original.
  static_cast<BinaryExpr&>(*copy).setOp(OpKind::Sub);
  EXPECT_FALSE(structurallyEqual(*original, *copy));
}

TEST(ExprTest, StructuralEqualityDiscriminates) {
  auto a = makeBinary(OpKind::Add, makeSignalRef(0, 8), makeSignalRef(1, 8));
  auto b = makeBinary(OpKind::Add, makeSignalRef(0, 8), makeSignalRef(1, 8));
  auto c = makeBinary(OpKind::Add, makeSignalRef(0, 8), makeSignalRef(2, 8));
  auto d = makeBinary(OpKind::Sub, makeSignalRef(0, 8), makeSignalRef(1, 8));
  EXPECT_TRUE(structurallyEqual(*a, *b));
  EXPECT_FALSE(structurallyEqual(*a, *c));
  EXPECT_FALSE(structurallyEqual(*a, *d));
}

TEST(ExprTest, SlotAccessMatchesChildren) {
  auto mux = makeTernary(makeKeyRef(0), makeConstant(1, 4), makeConstant(2, 4));
  auto& ternary = static_cast<TernaryExpr&>(*mux);
  EXPECT_EQ(ternary.exprSlotCount(), 3);
  EXPECT_EQ(ternary.exprSlotAt(TernaryExpr::kCondSlot)->kind(), ExprKind::KeyRef);
  EXPECT_EQ(ternary.exprSlotAt(TernaryExpr::kThenSlot)->kind(), ExprKind::Constant);
  EXPECT_THROW((void)ternary.exprSlotAt(3), support::ContractViolation);
}

TEST(ExprTest, LeafSlotAccessThrows) {
  auto leaf = makeConstant(5, 4);
  EXPECT_EQ(leaf->exprSlotCount(), 0);
  EXPECT_THROW((void)leaf->exprSlotAt(0), support::ContractViolation);
}

TEST(ExprTest, SizeAndDepth) {
  auto tree = makeBinary(OpKind::Add,
                         makeBinary(OpKind::Mul, makeSignalRef(0, 8), makeSignalRef(1, 8)),
                         makeConstant(1, 8));
  EXPECT_EQ(exprSize(*tree), 5);
  EXPECT_EQ(exprDepth(*tree), 3);
  auto leaf = makeConstant(0, 1);
  EXPECT_EQ(exprSize(*leaf), 1);
  EXPECT_EQ(exprDepth(*leaf), 1);
}

TEST(ExprTest, SpliceThroughSlot) {
  // Wrapping a node through its slot is the locking primitive; verify the
  // mechanics directly.
  auto root = makeBinary(OpKind::Add, makeSignalRef(0, 8), makeSignalRef(1, 8));
  auto& binary = static_cast<BinaryExpr&>(*root);
  ExprSlot slot{&binary, 0};
  ExprPtr original = std::move(slot.get());
  slot.get() = makeTernary(makeKeyRef(0), std::move(original), makeConstant(0, 8));
  EXPECT_EQ(binary.lhs().kind(), ExprKind::Ternary);
  EXPECT_EQ(exprSize(*root), 6);
}

}  // namespace
}  // namespace rtlock::rtl
