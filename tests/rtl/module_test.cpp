#include "rtl/module.hpp"

#include <gtest/gtest.h>

#include "support/diagnostics.hpp"

namespace rtlock::rtl {
namespace {

TEST(ModuleTest, SignalDeclarationAndLookup) {
  Module m{"top"};
  const auto a = m.addInput("a", 8);
  const auto y = m.addOutput("y", 8);
  const auto w = m.addWire("w", 4);
  EXPECT_EQ(m.signalCount(), 3u);
  EXPECT_EQ(m.signal(a).name, "a");
  EXPECT_TRUE(m.signal(a).isPort);
  EXPECT_EQ(m.signal(a).dir, PortDir::Input);
  EXPECT_EQ(m.signal(y).dir, PortDir::Output);
  EXPECT_FALSE(m.signal(w).isPort);
  EXPECT_EQ(m.findSignal("w"), std::optional<SignalId>{w});
  EXPECT_FALSE(m.findSignal("missing").has_value());
}

TEST(ModuleTest, DuplicateSignalNameThrows) {
  Module m{"top"};
  m.addInput("a", 8);
  EXPECT_THROW(m.addWire("a", 4), support::ContractViolation);
}

TEST(ModuleTest, KeyPortNameCollisionThrows) {
  Module m{"top"};
  EXPECT_THROW(m.addWire("lock_key", 4), support::ContractViolation);
}

TEST(ModuleTest, PortsInDeclarationOrder) {
  Module m{"top"};
  m.addInput("clk", 1);
  m.addWire("internal", 8);
  m.addOutput("q", 8);
  const auto ports = m.ports();
  ASSERT_EQ(ports.size(), 2u);
  EXPECT_EQ(m.signal(ports[0]).name, "clk");
  EXPECT_EQ(m.signal(ports[1]).name, "q");
}

TEST(ModuleTest, KeyAllocationAndRewind) {
  Module m{"top"};
  EXPECT_EQ(m.keyWidth(), 0);
  EXPECT_EQ(m.allocateKeyBits(1), 0);
  EXPECT_EQ(m.allocateKeyBits(4), 1);
  EXPECT_EQ(m.keyWidth(), 5);
  m.setKeyWidth(1);
  EXPECT_EQ(m.keyWidth(), 1);
  EXPECT_EQ(m.allocateKeyBits(2), 1);
}

TEST(ModuleTest, CloneIsStructurallyEqual) {
  Module m{"top"};
  const auto a = m.addInput("a", 8);
  const auto b = m.addInput("b", 8);
  const auto y = m.addOutput("y", 8);
  m.addContAssign(LValue{y, std::nullopt},
                  makeBinary(OpKind::Add, makeSignalRef(a, 8), makeSignalRef(b, 8)));
  const auto clk = m.addInput("clk", 1);
  auto body = makeBlock();
  static_cast<BlockStmt&>(*body).append(
      makeAssign(LValue{y, std::nullopt}, makeSignalRef(a, 8), true));
  m.addProcess(ProcessKind::Sequential, clk, std::move(body));
  m.allocateKeyBits(3);

  const Module copy = m.clone();
  EXPECT_TRUE(structurallyEqual(m, copy));
  EXPECT_EQ(copy.keyWidth(), 3);
}

TEST(ModuleTest, CloneIsIndependent) {
  Module m{"top"};
  const auto a = m.addInput("a", 8);
  const auto y = m.addOutput("y", 8);
  m.addContAssign(LValue{y, std::nullopt}, makeSignalRef(a, 8));
  Module copy = m.clone();
  copy.contAssigns()[0]->exprSlotAt(0) = makeConstant(0, 8);
  EXPECT_FALSE(structurallyEqual(m, copy));
}

TEST(ModuleTest, StructuralEqualityDiscriminates) {
  Module a{"top"};
  a.addInput("x", 8);
  Module b{"top"};
  b.addInput("x", 4);  // different width
  EXPECT_FALSE(structurallyEqual(a, b));
  Module c{"other"};
  c.addInput("x", 8);
  EXPECT_FALSE(structurallyEqual(a, c));
}

TEST(DesignTest, TopSelection) {
  Design design;
  design.addModule(Module{"alpha"});
  design.addModule(Module{"beta"});
  EXPECT_EQ(design.top().name(), "alpha");
  design.setTop("beta");
  EXPECT_EQ(design.top().name(), "beta");
  EXPECT_THROW(design.setTop("gamma"), support::Error);
  EXPECT_NE(design.findModule("alpha"), nullptr);
  EXPECT_EQ(design.findModule("missing"), nullptr);
}

}  // namespace
}  // namespace rtlock::rtl
