#include "rtl/stmt.hpp"

#include <gtest/gtest.h>

#include "support/diagnostics.hpp"

namespace rtlock::rtl {
namespace {

StmtPtr sampleIf() {
  return makeIf(makeBinary(OpKind::Gt, makeSignalRef(0, 8), makeSignalRef(1, 8)),
                makeAssign(LValue{2, std::nullopt}, makeConstant(1, 8), false),
                makeAssign(LValue{2, std::nullopt}, makeConstant(0, 8), false));
}

TEST(StmtTest, BlockAppendsAndCounts) {
  auto block = makeBlock();
  auto& body = static_cast<BlockStmt&>(*block);
  EXPECT_EQ(body.size(), 0);
  body.append(sampleIf());
  body.append(makeAssign(LValue{0, std::nullopt}, makeConstant(1, 4), true));
  EXPECT_EQ(body.size(), 2);
  EXPECT_EQ(body.stmtSlotCount(), 2);
  EXPECT_EQ(body.exprSlotCount(), 0);
}

TEST(StmtTest, IfSlots) {
  auto stmt = sampleIf();
  auto& ifStmt = static_cast<IfStmt&>(*stmt);
  EXPECT_TRUE(ifStmt.hasElse());
  EXPECT_EQ(ifStmt.exprSlotCount(), 1);
  EXPECT_EQ(ifStmt.stmtSlotCount(), 2);
  EXPECT_EQ(ifStmt.cond().kind(), ExprKind::Binary);
}

TEST(StmtTest, IfWithoutElse) {
  auto stmt = makeIf(makeSignalRef(0, 1),
                     makeAssign(LValue{1, std::nullopt}, makeConstant(1, 1), false));
  auto& ifStmt = static_cast<IfStmt&>(*stmt);
  EXPECT_FALSE(ifStmt.hasElse());
  EXPECT_EQ(ifStmt.stmtSlotCount(), 1);
  EXPECT_THROW((void)ifStmt.stmtSlotAt(1), support::ContractViolation);
}

TEST(StmtTest, CaseStructure) {
  std::vector<CaseItem> items;
  CaseItem item0;
  item0.labels = {0, 1};
  item0.body = makeAssign(LValue{1, std::nullopt}, makeConstant(1, 2), false);
  items.push_back(std::move(item0));
  auto stmt = makeCase(makeSignalRef(0, 2), std::move(items),
                       makeAssign(LValue{1, std::nullopt}, makeConstant(0, 2), false));
  auto& caseStmt = static_cast<CaseStmt&>(*stmt);
  EXPECT_TRUE(caseStmt.hasDefault());
  EXPECT_EQ(caseStmt.stmtSlotCount(), 2);  // one arm + default
  EXPECT_EQ(caseStmt.exprSlotCount(), 1);
}

TEST(StmtTest, CaseWithoutLabelsThrows) {
  std::vector<CaseItem> items;
  CaseItem bad;
  bad.body = makeAssign(LValue{0, std::nullopt}, makeConstant(0, 1), false);
  items.push_back(std::move(bad));
  EXPECT_THROW(makeCase(makeSignalRef(0, 2), std::move(items)), support::ContractViolation);
}

TEST(StmtTest, AssignSliceTarget) {
  auto stmt = makeAssign(LValue{3, std::make_pair(7, 4)}, makeConstant(5, 4), true);
  auto& assign = static_cast<AssignStmt&>(*stmt);
  EXPECT_TRUE(assign.nonBlocking());
  EXPECT_FALSE(assign.target().wholeSignal());
  EXPECT_EQ(assign.target().range->first, 7);
}

TEST(StmtTest, CloneIsDeepAndEqual) {
  auto original = sampleIf();
  auto copy = original->clone();
  EXPECT_TRUE(structurallyEqual(*original, *copy));
}

TEST(StmtTest, EqualityDiscriminatesStructure) {
  auto a = sampleIf();
  auto b = makeIf(makeBinary(OpKind::Gt, makeSignalRef(0, 8), makeSignalRef(1, 8)),
                  makeAssign(LValue{2, std::nullopt}, makeConstant(1, 8), false));
  EXPECT_FALSE(structurallyEqual(*a, *b));  // else missing
  auto c = makeAssign(LValue{0, std::nullopt}, makeConstant(0, 1), false);
  EXPECT_FALSE(structurallyEqual(*a, *c));  // different kind
}

TEST(StmtTest, NestedBlockClone) {
  auto inner = makeBlock();
  static_cast<BlockStmt&>(*inner).append(sampleIf());
  auto outer = makeBlock();
  static_cast<BlockStmt&>(*outer).append(std::move(inner));
  auto copy = outer->clone();
  EXPECT_TRUE(structurallyEqual(*outer, *copy));
}

}  // namespace
}  // namespace rtlock::rtl
