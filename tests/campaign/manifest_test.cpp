// The multi-host coordination contract: manifest round-trip and validation,
// O_CREAT|O_EXCL claim exclusivity (exactly one winner per cell under
// thread contention), mtime-based lease expiry with rename-to-tombstone
// steals, torn/garbage claim tolerance, and loud EEXIST-vs-other-errno
// classification.
#include "campaign/manifest.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "support/diagnostics.hpp"
#include "support/files.hpp"

namespace rtlock::campaign {
namespace {

namespace fs = std::filesystem;

std::string freshDir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "manifest_" + tag;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

Manifest testManifest(std::size_t cells = 6) {
  Manifest manifest;
  manifest.identity.designHash = "00000000deadbeef";
  manifest.identity.configHash = "00000000cafef00d";
  manifest.identity.design = "alu8";
  manifest.identity.config = "samples=1 rounds=30 budget=75% folds=3 extended-features=0";
  manifest.setup = "samples=1 rounds=30 budget=75%";
  const char* algos[] = {"serial", "hra", "era"};
  for (std::size_t i = 0; i < cells; ++i) {
    Cell cell;
    cell.id = {manifest.identity.designHash, algos[i / 2 % 3], i % 2 + 1,
               manifest.identity.configHash};
    cell.label = cell.id.algorithm + " / seed " + std::to_string(cell.id.seed);
    manifest.cells.push_back(cell);
  }
  return manifest;
}

/// Ages a claim file's mtime by `ms` so lease expiry triggers without
/// sleeping through real time.
void ageFile(const std::string& path, std::chrono::milliseconds ms) {
  const fs::file_time_type mtime = fs::last_write_time(path);
  fs::last_write_time(path, mtime - ms);
}

TEST(Manifest, WriteReadRoundTrips) {
  const std::string dir = freshDir("roundtrip");
  const std::string path = dir + "/campaign.manifest";
  const Manifest written = testManifest();
  writeManifest(path, written);

  const Manifest read = readManifest(path);
  EXPECT_EQ(read.identity.designHash, written.identity.designHash);
  EXPECT_EQ(read.identity.configHash, written.identity.configHash);
  EXPECT_EQ(read.identity.design, written.identity.design);
  EXPECT_EQ(read.identity.config, written.identity.config);
  EXPECT_EQ(read.setup, written.setup);
  ASSERT_EQ(read.cells.size(), written.cells.size());
  for (std::size_t i = 0; i < read.cells.size(); ++i) {
    EXPECT_EQ(read.cells[i].id.key(), written.cells[i].id.key());
    EXPECT_EQ(read.cells[i].label, written.cells[i].label);
  }
}

TEST(Manifest, WriteIsDeterministic) {
  const std::string dir = freshDir("deterministic");
  writeManifest(dir + "/a.manifest", testManifest());
  writeManifest(dir + "/b.manifest", testManifest());
  std::ifstream a{dir + "/a.manifest", std::ios::binary};
  std::ifstream b{dir + "/b.manifest", std::ios::binary};
  const std::string aText{std::istreambuf_iterator<char>{a}, std::istreambuf_iterator<char>{}};
  const std::string bText{std::istreambuf_iterator<char>{b}, std::istreambuf_iterator<char>{}};
  EXPECT_EQ(aText, bText);  // racing creators of one grid rename identical bytes
}

TEST(Manifest, MissingFileThrows) {
  EXPECT_THROW(readManifest(freshDir("missing") + "/nope.manifest"), support::Error);
}

TEST(Manifest, UnsupportedSchemaThrows) {
  const std::string dir = freshDir("schema");
  const std::string path = dir + "/campaign.manifest";
  support::atomicWriteFile(path, "{\"schema\": \"rtlock-manifest/v999\"}\n");
  try {
    (void)readManifest(path);
    FAIL() << "expected support::Error";
  } catch (const support::Error& error) {
    EXPECT_NE(std::string{error.what()}.find("unsupported schema"), std::string::npos);
  }
}

TEST(Manifest, NonContiguousIndexThrows) {
  const std::string dir = freshDir("gap");
  const std::string path = dir + "/campaign.manifest";
  Manifest manifest = testManifest(2);
  writeManifest(path, manifest);
  // Duplicate the last cell line with a skipped index.
  std::ifstream in{path, std::ios::binary};
  std::string text{std::istreambuf_iterator<char>{in}, std::istreambuf_iterator<char>{}};
  in.close();
  std::string gapLine = text.substr(text.rfind("{\"index\": 1"));
  const std::size_t pos = gapLine.find("\"index\": 1");
  gapLine.replace(pos, 10, "\"index\": 3");
  support::atomicWriteFile(path, text + gapLine);
  // The header also declares 2 cells; the index gap fires first.
  try {
    (void)readManifest(path);
    FAIL() << "expected support::Error";
  } catch (const support::Error& error) {
    EXPECT_NE(std::string{error.what()}.find("non-contiguous"), std::string::npos);
  }
}

TEST(Manifest, CellKeyInconsistentWithHeaderThrows) {
  const std::string dir = freshDir("badkey");
  const std::string path = dir + "/campaign.manifest";
  writeManifest(path, testManifest(2));
  std::ifstream in{path, std::ios::binary};
  std::string text{std::istreambuf_iterator<char>{in}, std::istreambuf_iterator<char>{}};
  in.close();
  const std::size_t pos = text.find("00000000deadbeef:", text.find('\n'));  // first cell key
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 16, "1111111111111111");
  support::atomicWriteFile(path, text);
  try {
    (void)readManifest(path);
    FAIL() << "expected support::Error";
  } catch (const support::Error& error) {
    EXPECT_NE(std::string{error.what()}.find("does not match"), std::string::npos);
  }
}

TEST(Manifest, DeclaredCountMismatchThrows) {
  const std::string dir = freshDir("count");
  const std::string path = dir + "/campaign.manifest";
  writeManifest(path, testManifest(3));
  std::ifstream in{path, std::ios::binary};
  std::string text{std::istreambuf_iterator<char>{in}, std::istreambuf_iterator<char>{}};
  in.close();
  text.resize(text.rfind("{\"index\": 2"));  // drop the last cell line
  support::atomicWriteFile(path, text);
  try {
    (void)readManifest(path);
    FAIL() << "expected support::Error";
  } catch (const support::Error& error) {
    EXPECT_NE(std::string{error.what()}.find("declares 3"), std::string::npos);
  }
}

TEST(Manifest, JournalsDirConvention) {
  EXPECT_EQ(journalsDirFor("/x/c.manifest"), "/x/c.manifest.journals");
}

TEST(Manifest, ListJournalsSortedAndFiltered) {
  const std::string dir = freshDir("list");
  support::atomicWriteFile(dir + "/b.jsonl", "b");
  support::atomicWriteFile(dir + "/a.jsonl", "a");
  support::atomicWriteFile(dir + "/notes.txt", "x");
  const std::vector<std::string> journals = listJournals(dir);
  ASSERT_EQ(journals.size(), 2u);
  EXPECT_EQ(journals[0], dir + "/a.jsonl");
  EXPECT_EQ(journals[1], dir + "/b.jsonl");
  EXPECT_TRUE(listJournals(dir + "/missing").empty());
}

// ---- ClaimBoard ------------------------------------------------------------

TEST(ClaimBoard, FirstClaimWinsSecondIsBusy) {
  const std::string manifest = freshDir("claim") + "/c.manifest";
  ClaimBoard alice{manifest, "alice", 60000.0};
  ClaimBoard bob{manifest, "bob", 60000.0};

  const ClaimOutcome first = alice.tryClaim(0);
  EXPECT_EQ(first.status, ClaimStatus::Acquired);
  EXPECT_FALSE(first.stolen);
  EXPECT_EQ(bob.tryClaim(0).status, ClaimStatus::Busy);
  ASSERT_TRUE(alice.claimOwner(0).has_value());
  EXPECT_EQ(*alice.claimOwner(0), "alice");
}

TEST(ClaimBoard, DoneMarkerShortCircuitsClaims) {
  const std::string manifest = freshDir("done") + "/c.manifest";
  ClaimBoard alice{manifest, "alice", 60000.0};
  ClaimBoard bob{manifest, "bob", 60000.0};
  ASSERT_EQ(alice.tryClaim(3).status, ClaimStatus::Acquired);
  alice.markDone(3, "ok");
  EXPECT_TRUE(bob.isDone(3));
  EXPECT_EQ(bob.tryClaim(3).status, ClaimStatus::Done);
}

TEST(ClaimBoard, StaleLeaseIsStolenExactlyOnce) {
  const std::string manifest = freshDir("steal") + "/c.manifest";
  ClaimBoard dead{manifest, "dead-worker", 500.0};
  ASSERT_EQ(dead.tryClaim(0).status, ClaimStatus::Acquired);
  ageFile(dead.claimPath(0), std::chrono::milliseconds{2000});

  ClaimBoard bob{manifest, "bob", 500.0};
  const ClaimOutcome stolen = bob.tryClaim(0);
  EXPECT_EQ(stolen.status, ClaimStatus::Acquired);
  EXPECT_TRUE(stolen.stolen);
  ASSERT_TRUE(bob.claimOwner(0).has_value());
  EXPECT_EQ(*bob.claimOwner(0), "bob");
}

TEST(ClaimBoard, FreshClaimSurvivesWithLeaseDisabled) {
  const std::string manifest = freshDir("nolease") + "/c.manifest";
  ClaimBoard alice{manifest, "alice", 0.0};  // lease expiry disabled
  ASSERT_EQ(alice.tryClaim(0).status, ClaimStatus::Acquired);
  ageFile(alice.claimPath(0), std::chrono::hours{24});
  ClaimBoard bob{manifest, "bob", 0.0};
  EXPECT_EQ(bob.tryClaim(0).status, ClaimStatus::Busy);
}

TEST(ClaimBoard, OwnOrphanIsReclaimedImmediately) {
  const std::string manifest = freshDir("orphan") + "/c.manifest";
  {
    ClaimBoard previous{manifest, "worker-a", 60000.0};
    ASSERT_EQ(previous.tryClaim(0).status, ClaimStatus::Acquired);
  }  // process "dies" holding the (fresh) claim
  ClaimBoard restarted{manifest, "worker-a", 60000.0};
  const ClaimOutcome reclaimed = restarted.tryClaim(0);
  EXPECT_EQ(reclaimed.status, ClaimStatus::Acquired);
  EXPECT_TRUE(reclaimed.stolen);
}

TEST(ClaimBoard, TornClaimContentIsToleratedAndAgesOut) {
  const std::string manifest = freshDir("torn") + "/c.manifest";
  ClaimBoard bob{manifest, "bob", 500.0};
  {
    // A rival crashed mid-write: the claim exists with garbage content.
    std::ofstream torn{bob.claimPath(0), std::ios::binary};
    torn << "{\"owner\": \"al";
  }
  EXPECT_FALSE(bob.claimOwner(0).has_value());
  EXPECT_EQ(bob.tryClaim(0).status, ClaimStatus::Busy);  // mtime still fresh
  ageFile(bob.claimPath(0), std::chrono::milliseconds{2000});
  const ClaimOutcome stolen = bob.tryClaim(0);
  EXPECT_EQ(stolen.status, ClaimStatus::Acquired);
  EXPECT_TRUE(stolen.stolen);
}

TEST(ClaimBoard, EmptyClaimFileIsTolerated) {
  const std::string manifest = freshDir("emptyclaim") + "/c.manifest";
  ClaimBoard bob{manifest, "bob", 500.0};
  { std::ofstream empty{bob.claimPath(1), std::ios::binary}; }
  EXPECT_FALSE(bob.claimOwner(1).has_value());
  EXPECT_EQ(bob.tryClaim(1).status, ClaimStatus::Busy);
  ageFile(bob.claimPath(1), std::chrono::milliseconds{2000});
  EXPECT_EQ(bob.tryClaim(1).status, ClaimStatus::Acquired);
}

TEST(ClaimBoard, ReleaseMakesCellClaimableAgain) {
  const std::string manifest = freshDir("release") + "/c.manifest";
  ClaimBoard alice{manifest, "alice", 60000.0};
  ClaimBoard bob{manifest, "bob", 60000.0};
  ASSERT_EQ(alice.tryClaim(0).status, ClaimStatus::Acquired);
  EXPECT_EQ(bob.tryClaim(0).status, ClaimStatus::Busy);
  alice.release(0);
  EXPECT_EQ(bob.tryClaim(0).status, ClaimStatus::Acquired);
}

TEST(ClaimBoard, HeartbeatRefreshesTheLease) {
  const std::string manifest = freshDir("heartbeat") + "/c.manifest";
  ClaimBoard alice{manifest, "alice", 500.0};
  ClaimBoard bob{manifest, "bob", 500.0};
  ASSERT_EQ(alice.tryClaim(0).status, ClaimStatus::Acquired);
  ageFile(alice.claimPath(0), std::chrono::milliseconds{2000});
  alice.heartbeat(0);  // atomic rewrite bumps mtime back to "now"
  EXPECT_EQ(bob.tryClaim(0).status, ClaimStatus::Busy);
}

TEST(ClaimBoard, InfrastructureErrnoIsNeverMaskedAsBusy) {
  const std::string dir = freshDir("errno");
  const std::string manifest = dir + "/c.manifest";
  ClaimBoard board{manifest, "alice", 60000.0};
  fs::remove_all(board.dir());  // claim dir ripped away (ENOENT, not EEXIST)
  try {
    (void)board.tryClaim(0);
    FAIL() << "expected support::Error";
  } catch (const support::Error& error) {
    EXPECT_NE(std::string{error.what()}.find("errno"), std::string::npos) << error.what();
  }
}

TEST(ClaimBoard, ContendingThreadsYieldExactlyOneOwnerPerCell) {
  const std::string manifest = freshDir("contention") + "/c.manifest";
  constexpr std::size_t kCells = 24;
  constexpr int kWorkers = 8;

  std::vector<std::atomic<int>> winners(kCells);
  for (auto& w : winners) w.store(0);
  std::atomic<int> totalWins{0};

  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      ClaimBoard board{manifest, "worker-" + std::to_string(w), 60000.0};
      for (std::size_t cell = 0; cell < kCells; ++cell) {
        const ClaimOutcome outcome = board.tryClaim(cell);
        if (outcome.status == ClaimStatus::Acquired) {
          winners[cell].fetch_add(1);
          totalWins.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  EXPECT_EQ(totalWins.load(), static_cast<int>(kCells));
  for (std::size_t cell = 0; cell < kCells; ++cell) {
    EXPECT_EQ(winners[cell].load(), 1) << "cell " << cell;
  }
}

TEST(ClaimBoard, ContendingStealersYieldExactlyOneNewOwnerPerCell) {
  const std::string manifest = freshDir("stealrace") + "/c.manifest";
  constexpr std::size_t kCells = 16;
  constexpr int kWorkers = 8;

  // A dead worker holds every cell with an expired lease.
  {
    ClaimBoard dead{manifest, "dead-worker", 200.0};
    for (std::size_t cell = 0; cell < kCells; ++cell) {
      ASSERT_EQ(dead.tryClaim(cell).status, ClaimStatus::Acquired);
      ageFile(dead.claimPath(cell), std::chrono::milliseconds{5000});
    }
  }

  std::vector<std::atomic<int>> winners(kCells);
  for (auto& w : winners) w.store(0);
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      ClaimBoard board{manifest, "rival-" + std::to_string(w), 200.0};
      for (std::size_t cell = 0; cell < kCells; ++cell) {
        if (board.tryClaim(cell).status == ClaimStatus::Acquired) winners[cell].fetch_add(1);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  for (std::size_t cell = 0; cell < kCells; ++cell) {
    EXPECT_EQ(winners[cell].load(), 1) << "cell " << cell;
  }
}

TEST(DefaultWorkerId, CarriesHostAndPid) {
  const std::string id = defaultWorkerId();
  EXPECT_NE(id.find('-'), std::string::npos);
  EXPECT_GT(id.size(), 2u);
}

}  // namespace
}  // namespace rtlock::campaign
