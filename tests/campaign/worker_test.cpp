// In-process runWorker contract: full-manifest completion, resume from the
// worker's own journal (failure rows are FINAL for a manifest), cooperation
// between two workers sharing one claim board, and maxWaitMs giving up when
// a rival wedges holding a fresh lease.
#include "campaign/worker.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "campaign/merge.hpp"
#include "support/diagnostics.hpp"

namespace rtlock::campaign {
namespace {

namespace fs = std::filesystem;

std::string freshDir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "worker_" + tag;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

Manifest testManifest(std::size_t cells = 4) {
  Manifest manifest;
  manifest.identity.designHash = "00000000deadbeef";
  manifest.identity.configHash = "00000000cafef00d";
  manifest.identity.design = "alu8";
  manifest.identity.config = "samples=1 rounds=30";
  manifest.setup = "samples=1 rounds=30";
  for (std::size_t i = 0; i < cells; ++i) {
    Cell cell;
    cell.id = {manifest.identity.designHash, "toy", i + 1, manifest.identity.configHash};
    cell.label = "toy / seed " + std::to_string(i + 1);
    manifest.cells.push_back(cell);
  }
  return manifest;
}

/// Pure toy compute: payload derived only from the cell seed.
support::JsonValue toyCompute(const Cell& cell, const CellContext&) {
  support::JsonValue payload;
  payload.set("seed_times_ten", cell.id.seed * 10);
  return payload;
}

CampaignIdentity identityOf(const Manifest& manifest) { return manifest.identity; }

TEST(Worker, SingleWorkerCompletesTheManifest) {
  const std::string dir = freshDir("solo");
  const std::string manifestPath = dir + "/c.manifest";
  const Manifest manifest = testManifest();
  writeManifest(manifestPath, manifest);

  Journal journal{dir + "/solo.jsonl", identityOf(manifest)};
  WorkerOptions options;
  options.campaign.threads = 1;
  options.ownerId = "solo";
  const WorkerReport report = runWorker(manifest, manifestPath, journal, options, toyCompute);

  EXPECT_TRUE(report.allDone);
  EXPECT_FALSE(report.interrupted);
  EXPECT_FALSE(report.timedOut);
  EXPECT_EQ(report.totalCells, 4u);
  EXPECT_EQ(report.computedCells, 4u);
  EXPECT_EQ(report.okCells, 4u);
  EXPECT_EQ(report.doneElsewhere, 0u);

  const MergeResult merged = mergeJournals({dir + "/solo.jsonl"});
  EXPECT_EQ(merged.rows.size(), 4u);
  EXPECT_EQ(merged.stats.okRows, 4u);
}

TEST(Worker, ResumeSatisfiesCellsFromOwnJournalIncludingFailures) {
  const std::string dir = freshDir("resume");
  const std::string manifestPath = dir + "/c.manifest";
  const Manifest manifest = testManifest();
  writeManifest(manifestPath, manifest);
  const std::string journalPath = dir + "/w.jsonl";

  // First run: cell seed 2 fails (deterministically).
  {
    Journal journal{journalPath, identityOf(manifest)};
    WorkerOptions options;
    options.campaign.threads = 1;
    options.campaign.retry.maxAttempts = 1;
    options.ownerId = "w";
    const WorkerReport report =
        runWorker(manifest, manifestPath, journal, options,
                  [](const Cell& cell, const CellContext& context) {
                    if (cell.id.seed == 2) throw support::Error{"deterministic failure"};
                    return toyCompute(cell, context);
                  });
    EXPECT_TRUE(report.allDone);
    EXPECT_EQ(report.okCells, 3u);
    EXPECT_EQ(report.errorCells, 1u);
  }

  // Wipe the claim board (simulates a fresh fleet against surviving
  // journals); the worker must republish done markers from its own journal
  // and recompute nothing — the error row is FINAL for the manifest.
  fs::remove_all(manifestPath + ".claims");
  std::atomic<int> computeCalls{0};
  Journal journal{journalPath, identityOf(manifest)};
  WorkerOptions options;
  options.campaign.threads = 1;
  options.ownerId = "w";
  const WorkerReport report = runWorker(manifest, manifestPath, journal, options,
                                        [&](const Cell& cell, const CellContext& context) {
                                          computeCalls.fetch_add(1);
                                          return toyCompute(cell, context);
                                        });
  EXPECT_TRUE(report.allDone);
  EXPECT_EQ(computeCalls.load(), 0);
  EXPECT_EQ(report.computedCells, 0u);
  EXPECT_EQ(report.journaledCells, 4u);
}

TEST(Worker, TwoWorkersPartitionTheManifestAndMergeCleanly) {
  const std::string dir = freshDir("pair");
  const std::string manifestPath = dir + "/c.manifest";
  const Manifest manifest = testManifest(12);
  writeManifest(manifestPath, manifest);

  WorkerReport reports[2];
  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&, w] {
      Journal journal{dir + "/w" + std::to_string(w) + ".jsonl", identityOf(manifest)};
      WorkerOptions options;
      options.campaign.threads = 2;
      options.ownerId = "w" + std::to_string(w);
      options.pollMs = 5.0;
      reports[w] = runWorker(manifest, manifestPath, journal, options, toyCompute);
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_TRUE(reports[0].allDone);
  EXPECT_TRUE(reports[1].allDone);
  // Every cell computed at least once across the fleet; double computes are
  // possible only through steals, which cannot happen with fresh leases.
  EXPECT_EQ(reports[0].computedCells + reports[1].computedCells, 12u);
  EXPECT_EQ(reports[0].okCells + reports[1].okCells, 12u);

  const MergeResult merged = mergeJournals({dir + "/w0.jsonl", dir + "/w1.jsonl"});
  EXPECT_EQ(merged.rows.size(), 12u);
  EXPECT_EQ(merged.stats.okRows, 12u);
  for (const auto& [key, row] : merged.rows) {
    EXPECT_EQ(row.payload.at("seed_times_ten").asInt(),
              static_cast<std::int64_t>(row.id.seed * 10));
  }
}

TEST(Worker, MaxWaitGivesUpWhenARivalHoldsAFreshLease) {
  const std::string dir = freshDir("wedged");
  const std::string manifestPath = dir + "/c.manifest";
  const Manifest manifest = testManifest(1);
  writeManifest(manifestPath, manifest);

  // A "wedged" rival holds the only cell with a fresh claim and never
  // finishes; lease expiry is disabled so the claim cannot be stolen.
  ClaimBoard rival{manifestPath, "wedged-rival", 0.0};
  ASSERT_EQ(rival.tryClaim(0).status, ClaimStatus::Acquired);

  Journal journal{dir + "/w.jsonl", identityOf(manifest)};
  WorkerOptions options;
  options.campaign.threads = 1;
  options.ownerId = "w";
  options.leaseMs = 0.0;  // never steal
  options.pollMs = 5.0;
  options.maxWaitMs = 200.0;
  const WorkerReport report = runWorker(manifest, manifestPath, journal, options, toyCompute);

  EXPECT_TRUE(report.timedOut);
  EXPECT_FALSE(report.allDone);
  EXPECT_EQ(report.computedCells, 0u);
}

TEST(Worker, StaleLeaseFromDeadWorkerIsStolenAndCellComputed) {
  const std::string dir = freshDir("steal");
  const std::string manifestPath = dir + "/c.manifest";
  const Manifest manifest = testManifest(2);
  writeManifest(manifestPath, manifest);

  // A dead worker left a claim on cell 0; age it past the lease.
  {
    ClaimBoard dead{manifestPath, "dead-worker", 100.0};
    ASSERT_EQ(dead.tryClaim(0).status, ClaimStatus::Acquired);
    const fs::file_time_type mtime = fs::last_write_time(dead.claimPath(0));
    fs::last_write_time(dead.claimPath(0), mtime - std::chrono::milliseconds{5000});
  }

  Journal journal{dir + "/w.jsonl", identityOf(manifest)};
  WorkerOptions options;
  options.campaign.threads = 1;
  options.ownerId = "w";
  options.leaseMs = 100.0;
  options.pollMs = 5.0;
  const WorkerReport report = runWorker(manifest, manifestPath, journal, options, toyCompute);

  EXPECT_TRUE(report.allDone);
  EXPECT_EQ(report.computedCells, 2u);
  EXPECT_GE(report.steals, 1u);
}

}  // namespace
}  // namespace rtlock::campaign
