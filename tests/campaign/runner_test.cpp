// Fault isolation, retry/backoff, deadlines, journal resume, shutdown
// drain and --check recomputation of the campaign runner.
#include "campaign/runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "campaign/fault.hpp"
#include "support/diagnostics.hpp"

namespace rtlock::campaign {
namespace {

std::vector<Cell> makeGrid(std::size_t count) {
  std::vector<Cell> cells;
  for (std::size_t i = 0; i < count; ++i) {
    Cell cell;
    cell.id = {"d0d0d0d0d0d0d0d0", "algo", i, "c0c0c0c0c0c0c0c0"};
    cell.label = "cell " + std::to_string(i);
    cells.push_back(cell);
  }
  return cells;
}

support::JsonValue payloadFor(const Cell& cell) {
  support::JsonValue payload;
  payload.set("value", static_cast<std::int64_t>(cell.id.seed * 10));
  return payload;
}

std::string freshPath(const std::string& tag) {
  const std::string path = ::testing::TempDir() + "runner_" + tag + ".jsonl";
  std::filesystem::remove(path);
  return path;
}

TEST(Runner, AllCellsOk) {
  const std::vector<Cell> cells = makeGrid(4);
  CampaignOptions options;
  options.threads = 2;
  const CampaignResult result = runCampaign(
      cells, options, nullptr,
      [](const Cell& cell, const CellContext&) { return payloadFor(cell); });
  EXPECT_EQ(result.okCells, 4u);
  EXPECT_EQ(result.errorCells, 0u);
  EXPECT_FALSE(result.interrupted);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(result.outcomes[i].status, CellStatus::Ok);
    EXPECT_EQ(result.outcomes[i].attempts, 1);
    EXPECT_EQ(result.outcomes[i].payload.at("value").asInt(),
              static_cast<std::int64_t>(i * 10));
  }
}

TEST(Runner, ThrowingCellIsIsolatedNotFatal) {
  const std::vector<Cell> cells = makeGrid(3);
  CampaignOptions options;
  options.threads = 1;
  options.retry.maxAttempts = 3;
  options.retry.backoffBaseMs = 1.0;
  const CampaignResult result =
      runCampaign(cells, options, nullptr, [](const Cell& cell, const CellContext&) {
        if (cell.id.seed == 1) throw support::Error{"cell exploded"};
        return payloadFor(cell);
      });
  EXPECT_EQ(result.okCells, 2u);
  EXPECT_EQ(result.errorCells, 1u);
  EXPECT_EQ(result.outcomes[1].status, CellStatus::Error);
  EXPECT_EQ(result.outcomes[1].attempts, 3);  // all attempts burned
  EXPECT_EQ(result.outcomes[1].errorCode, "error");
  EXPECT_EQ(result.outcomes[1].errorWhat, "cell exploded");
  EXPECT_EQ(result.outcomes[2].status, CellStatus::Ok);
}

TEST(Runner, TransientFailureSucceedsOnRetry) {
  const std::vector<Cell> cells = makeGrid(1);
  CampaignOptions options;
  options.threads = 1;
  options.retry.maxAttempts = 2;
  options.retry.backoffBaseMs = 1.0;
  std::atomic<int> calls{0};
  const CampaignResult result =
      runCampaign(cells, options, nullptr, [&](const Cell& cell, const CellContext&) {
        if (calls.fetch_add(1) == 0) throw support::Error{"transient"};
        return payloadFor(cell);
      });
  EXPECT_EQ(result.okCells, 1u);
  EXPECT_EQ(result.outcomes[0].attempts, 2);
  EXPECT_EQ(calls.load(), 2);
}

TEST(Runner, NonStandardExceptionClassified) {
  const std::vector<Cell> cells = makeGrid(1);
  CampaignOptions options;
  options.threads = 1;
  options.retry.maxAttempts = 1;
  const CampaignResult result = runCampaign(
      cells, options, nullptr,
      [](const Cell&, const CellContext&) -> support::JsonValue { throw 42; });
  EXPECT_EQ(result.outcomes[0].status, CellStatus::Error);
  EXPECT_EQ(result.outcomes[0].errorCode, "unknown");
}

TEST(Runner, CooperativeDeadlineBecomesTimeoutWithoutRetry) {
  const std::vector<Cell> cells = makeGrid(2);
  CampaignOptions options;
  options.threads = 1;
  options.retry.maxAttempts = 3;
  options.cellDeadlineMs = 20.0;
  std::atomic<int> calls{0};
  const CampaignResult result =
      runCampaign(cells, options, nullptr, [&](const Cell& cell, const CellContext& context) {
        if (cell.id.seed == 0) {
          calls.fetch_add(1);
          while (true) {
            context.checkDeadline();  // raises CellTimeout once expired
            std::this_thread::sleep_for(std::chrono::milliseconds{1});
          }
        }
        return payloadFor(cell);
      });
  EXPECT_EQ(result.timeoutCells, 1u);
  EXPECT_EQ(result.okCells, 1u);
  EXPECT_EQ(result.outcomes[0].status, CellStatus::Timeout);
  EXPECT_EQ(result.outcomes[0].errorCode, "timeout");
  EXPECT_EQ(calls.load(), 1);  // deadlines are budgets, not transient: no retry
}

TEST(Runner, PostHocDeadlineDegradesToTimeout) {
  const std::vector<Cell> cells = makeGrid(1);
  CampaignOptions options;
  options.threads = 1;
  options.cellDeadlineMs = 5.0;
  const CampaignResult result =
      runCampaign(cells, options, nullptr, [](const Cell& cell, const CellContext&) {
        std::this_thread::sleep_for(std::chrono::milliseconds{25});
        return payloadFor(cell);  // never polls the deadline
      });
  EXPECT_EQ(result.outcomes[0].status, CellStatus::Timeout);
}

TEST(Runner, JournalResumeSkipsCompletedCells) {
  const std::string path = freshPath("resume");
  const std::vector<Cell> cells = makeGrid(4);
  CampaignIdentity identity;
  identity.designHash = cells[0].id.designHash;
  identity.configHash = cells[0].id.configHash;
  CampaignOptions options;
  options.threads = 1;
  std::atomic<int> calls{0};
  const CellFn compute = [&](const Cell& cell, const CellContext&) {
    calls.fetch_add(1);
    return payloadFor(cell);
  };
  {
    Journal journal{path, identity};
    const CampaignResult first = runCampaign(cells, options, &journal, compute);
    EXPECT_EQ(first.okCells, 4u);
    EXPECT_EQ(first.journaledCells, 0u);
  }
  EXPECT_EQ(calls.load(), 4);
  {
    Journal journal{path, identity};
    const CampaignResult second = runCampaign(cells, options, &journal, compute);
    EXPECT_EQ(second.okCells, 4u);
    EXPECT_EQ(second.journaledCells, 4u);
    EXPECT_TRUE(second.outcomes[0].fromJournal);
    EXPECT_EQ(second.outcomes[2].payload.at("value").asInt(), 20);
  }
  EXPECT_EQ(calls.load(), 4);  // nothing recomputed
}

TEST(Runner, ErrorRowsRerunByDefaultKeptWithKeepErrors) {
  const std::string path = freshPath("keep_errors");
  const std::vector<Cell> cells = makeGrid(2);
  CampaignIdentity identity;
  identity.designHash = cells[0].id.designHash;
  identity.configHash = cells[0].id.configHash;
  CampaignOptions options;
  options.threads = 1;
  options.retry.maxAttempts = 1;
  bool fail = true;
  const CellFn compute = [&](const Cell& cell, const CellContext&) {
    if (fail && cell.id.seed == 0) throw support::Error{"flaky"};
    return payloadFor(cell);
  };
  {
    Journal journal{path, identity};
    const CampaignResult first = runCampaign(cells, options, &journal, compute);
    EXPECT_EQ(first.errorCells, 1u);
  }
  fail = false;
  {
    // keep-errors: the journaled failure is preserved, not recomputed.
    Journal journal{path, identity};
    CampaignOptions keep = options;
    keep.keepErrors = true;
    const CampaignResult kept = runCampaign(cells, keep, &journal, compute);
    EXPECT_EQ(kept.errorCells, 1u);
    EXPECT_TRUE(kept.outcomes[0].fromJournal);
  }
  {
    // Default: the error row is re-run (and now succeeds).
    Journal journal{path, identity};
    const CampaignResult second = runCampaign(cells, options, &journal, compute);
    EXPECT_EQ(second.errorCells, 0u);
    EXPECT_EQ(second.okCells, 2u);
  }
}

TEST(Runner, ShutdownBeforeRunSkipsEverything) {
  const std::vector<Cell> cells = makeGrid(3);
  CampaignOptions options;
  options.threads = 1;
  requestShutdown();
  const CampaignResult result = runCampaign(
      cells, options, nullptr,
      [](const Cell& cell, const CellContext&) { return payloadFor(cell); });
  clearShutdownRequest();
  EXPECT_TRUE(result.interrupted);
  EXPECT_EQ(result.skippedCells, 3u);
  EXPECT_EQ(result.okCells, 0u);
}

TEST(Runner, ShutdownMidCampaignDrainsAndReportsCompletedPrefix) {
  const std::vector<Cell> cells = makeGrid(8);
  CampaignOptions options;
  options.threads = 1;  // serial: deterministic stop point
  const CampaignResult result =
      runCampaign(cells, options, nullptr, [&](const Cell& cell, const CellContext&) {
        if (cell.id.seed == 2) requestShutdown();  // stop after the third cell
        return payloadFor(cell);
      });
  clearShutdownRequest();
  EXPECT_TRUE(result.interrupted);
  EXPECT_EQ(result.okCells, 3u);
  EXPECT_EQ(result.skippedCells, 5u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(result.outcomes[i].status, CellStatus::Ok);
  for (std::size_t i = 3; i < 8; ++i) EXPECT_EQ(result.outcomes[i].status, CellStatus::Skipped);
}

TEST(Runner, InjectedThrowFaultProducesErrorRow) {
  const std::vector<Cell> cells = makeGrid(3);
  CampaignOptions options;
  options.threads = 1;
  options.retry.maxAttempts = 2;
  options.retry.backoffBaseMs = 1.0;
  options.faults = FaultPlan::parse("cell:1:throw");
  const CampaignResult result = runCampaign(
      cells, options, nullptr,
      [](const Cell& cell, const CellContext&) { return payloadFor(cell); });
  EXPECT_EQ(result.okCells, 2u);
  EXPECT_EQ(result.errorCells, 1u);
  EXPECT_EQ(result.outcomes[1].attempts, 2);
  EXPECT_NE(result.outcomes[1].errorWhat.find("injected fault"), std::string::npos);
}

TEST(Runner, InjectedHangFaultTimesOutAtDeadline) {
  const std::vector<Cell> cells = makeGrid(1);
  CampaignOptions options;
  options.threads = 1;
  options.cellDeadlineMs = 30.0;
  options.faults = FaultPlan::parse("cell:0:hang");
  const CampaignResult result = runCampaign(
      cells, options, nullptr,
      [](const Cell& cell, const CellContext&) { return payloadFor(cell); });
  EXPECT_EQ(result.timeoutCells, 1u);
  EXPECT_EQ(result.outcomes[0].errorCode, "timeout");
}

TEST(Runner, CheckJournalDetectsDivergence) {
  const std::string path = freshPath("check");
  const std::vector<Cell> cells = makeGrid(5);
  CampaignIdentity identity;
  identity.designHash = cells[0].id.designHash;
  identity.configHash = cells[0].id.configHash;
  CampaignOptions options;
  options.threads = 1;
  const CellFn compute = [](const Cell& cell, const CellContext&) { return payloadFor(cell); };
  Journal journal{path, identity};
  const CampaignResult result = runCampaign(cells, options, &journal, compute);
  ASSERT_EQ(result.okCells, 5u);

  const CheckResult clean = checkJournal(cells, journal, 3, compute);
  EXPECT_EQ(clean.checkedCells, 3u);
  EXPECT_TRUE(clean.mismatches.empty());

  const CheckResult all = checkJournal(cells, journal, 99, compute);
  EXPECT_EQ(all.checkedCells, 5u);

  // A compute function that disagrees with the journal must be caught.
  const CheckResult dirty =
      checkJournal(cells, journal, 99, [](const Cell& cell, const CellContext&) {
        support::JsonValue payload;
        payload.set("value", static_cast<std::int64_t>(cell.id.seed * 10 + 1));
        return payload;
      });
  EXPECT_EQ(dirty.mismatches.size(), 5u);
}

TEST(FaultPlan, ParsesAndLooksUp) {
  const FaultPlan plan = FaultPlan::parse("cell:0:throw, cell:7:hang,cell:3:crash");
  EXPECT_FALSE(plan.empty());
  EXPECT_EQ(plan.at(0), FaultKind::Throw);
  EXPECT_EQ(plan.at(7), FaultKind::Hang);
  EXPECT_EQ(plan.at(3), FaultKind::Crash);
  EXPECT_EQ(plan.at(1), std::nullopt);
  EXPECT_TRUE(FaultPlan::parse("").empty());
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse("cell:0"), support::Error);
  EXPECT_THROW(FaultPlan::parse("cell:x:throw"), support::Error);
  EXPECT_THROW(FaultPlan::parse("cell:0:explode"), support::Error);
  EXPECT_THROW(FaultPlan::parse("row:0:throw"), support::Error);
}

TEST(FaultPlan, FromEnvReadsVariable) {
  ASSERT_EQ(setenv("RTLOCK_FAULT_INJECT", "cell:2:throw", 1), 0);
  const FaultPlan plan = FaultPlan::fromEnv();
  EXPECT_EQ(plan.at(2), FaultKind::Throw);
  ASSERT_EQ(unsetenv("RTLOCK_FAULT_INJECT"), 0);
  EXPECT_TRUE(FaultPlan::fromEnv().empty());
}

}  // namespace
}  // namespace rtlock::campaign
