// Adversarial corpus for the journal merge rules: disjoint union, ok rows
// superseding failures, byte-identical duplicate dedup, differing-ok hard
// determinism error, identity-mismatch refusal, torn tails, headerless
// journals, permutation-independence of the merged bytes, and a fixed-seed
// byte-mutation fuzz pass (merge may reject, never crash).
#include "campaign/merge.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "support/diagnostics.hpp"

namespace rtlock::campaign {
namespace {

CampaignIdentity testIdentity() {
  CampaignIdentity identity;
  identity.designHash = "00000000deadbeef";
  identity.configHash = "00000000cafef00d";
  identity.design = "alu8";
  identity.config = "samples=1 rounds=30";
  return identity;
}

JournalRow okRow(const std::string& algorithm, std::uint64_t seed, double kpa = 42.25) {
  JournalRow row;
  row.id = {"00000000deadbeef", algorithm, seed, "00000000cafef00d"};
  row.status = "ok";
  row.attempts = 1;
  row.wallMs = 12.5;
  row.payload.set("mean_kpa_percent", kpa);
  return row;
}

JournalRow errorRow(const std::string& algorithm, std::uint64_t seed,
                    const std::string& what = "injected fault") {
  JournalRow row;
  row.id = {"00000000deadbeef", algorithm, seed, "00000000cafef00d"};
  row.status = "error";
  row.attempts = 3;
  row.wallMs = 4.0;
  row.errorCode = "error";
  row.errorWhat = what;
  return row;
}

JournalRow timeoutRow(const std::string& algorithm, std::uint64_t seed) {
  JournalRow row;
  row.id = {"00000000deadbeef", algorithm, seed, "00000000cafef00d"};
  row.status = "timeout";
  row.attempts = 1;
  row.wallMs = 100.0;
  row.errorCode = "timeout";
  row.errorWhat = "cell deadline expired";
  return row;
}

std::string freshPath(const std::string& tag) {
  const std::string path = ::testing::TempDir() + "merge_" + tag + ".jsonl";
  std::filesystem::remove(path);
  return path;
}

std::string slurp(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void writeRaw(const std::string& path, const std::string& bytes) {
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  out << bytes;
}

/// Writes a well-formed worker journal containing `rows`.
std::string writeJournal(const std::string& tag, const std::vector<JournalRow>& rows,
                         const CampaignIdentity& identity = testIdentity()) {
  const std::string path = freshPath(tag);
  Journal journal{path, identity};
  for (const JournalRow& row : rows) journal.append(row);
  return path;
}

TEST(Merge, DisjointJournalsUnion) {
  const std::string a = writeJournal("disjoint_a", {okRow("hra", 1), okRow("hra", 2)});
  const std::string b = writeJournal("disjoint_b", {okRow("era", 1), errorRow("era", 2)});
  const MergeResult merged = mergeJournals({a, b});
  EXPECT_EQ(merged.rows.size(), 4u);
  EXPECT_EQ(merged.stats.journals, 2u);
  EXPECT_EQ(merged.stats.okRows, 3u);
  EXPECT_EQ(merged.stats.errorRows, 1u);
  EXPECT_EQ(merged.stats.timeoutRows, 0u);
  EXPECT_EQ(merged.stats.duplicatesDropped, 0u);
  EXPECT_EQ(merged.identity.designHash, "00000000deadbeef");
}

TEST(Merge, OkSupersedesErrorAndTimeoutEitherOrder) {
  const std::string ok = writeJournal("super_ok", {okRow("hra", 1)});
  const std::string failed = writeJournal("super_fail", {errorRow("hra", 1)});
  const std::string timedOut = writeJournal("super_timeout", {timeoutRow("hra", 1)});

  const std::vector<std::vector<std::string>> orders = {
      {ok, failed, timedOut}, {failed, timedOut, ok}, {timedOut, ok, failed}};
  for (const std::vector<std::string>& order : orders) {
    const MergeResult merged = mergeJournals(order);
    ASSERT_EQ(merged.rows.size(), 1u);
    EXPECT_TRUE(merged.rows.begin()->second.ok());
    EXPECT_EQ(merged.stats.okRows, 1u);
    EXPECT_EQ(merged.stats.errorRows, 0u);
    EXPECT_EQ(merged.stats.timeoutRows, 0u);
    // The count itself is order-dependent (two failures folding together
    // before the ok arrives supersede as one); only "at least one" holds.
    EXPECT_GE(merged.stats.supersededFailures, 1u);
  }
}

TEST(Merge, ByteIdenticalOkDuplicatesDedup) {
  // A lease steal double-computed hra/1; purity makes the rows identical.
  const std::string a = writeJournal("dup_a", {okRow("hra", 1), okRow("hra", 2)});
  const std::string b = writeJournal("dup_b", {okRow("hra", 1)});
  const MergeResult merged = mergeJournals({a, b});
  EXPECT_EQ(merged.rows.size(), 2u);
  EXPECT_EQ(merged.stats.duplicatesDropped, 1u);
  EXPECT_EQ(merged.stats.okRows, 2u);
}

TEST(Merge, DifferingOkPayloadsAreAHardDeterminismError) {
  const std::string a = writeJournal("det_a", {okRow("hra", 1, 42.25)});
  const std::string b = writeJournal("det_b", {okRow("hra", 1, 99.0)});
  try {
    (void)mergeJournals({a, b});
    FAIL() << "expected support::Error";
  } catch (const support::Error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("determinism violation"), std::string::npos) << what;
    EXPECT_NE(what.find(okRow("hra", 1).id.key()), std::string::npos) << what;
  }
}

TEST(Merge, IdentityMismatchRefusesLoudly) {
  CampaignIdentity other = testIdentity();
  other.designHash = "1111111111111111";
  const std::string a = writeJournal("mismatch_a", {okRow("hra", 1)});
  const std::string b = freshPath("mismatch_b");
  {
    JournalRow row = okRow("hra", 2);
    row.id.designHash = other.designHash;
    Journal journal{b, other};
    journal.append(row);
  }
  try {
    (void)mergeJournals({a, b});
    FAIL() << "expected support::Error";
  } catch (const support::Error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("different campaign"), std::string::npos) << what;
    EXPECT_NE(what.find("1111111111111111"), std::string::npos) << what;
    EXPECT_NE(what.find("00000000deadbeef"), std::string::npos) << what;
  }
}

TEST(Merge, TornTailIsToleratedAndCounted) {
  const std::string a = writeJournal("torn", {okRow("hra", 1)});
  {
    std::ofstream out{a, std::ios::binary | std::ios::app};
    out << "{\"cell\": \"00000000deadbeef:hra:2:00000000caf";  // crash mid-append
  }
  const MergeResult merged = mergeJournals({a});
  EXPECT_EQ(merged.rows.size(), 1u);
  EXPECT_EQ(merged.stats.tornTails, 1u);
}

TEST(Merge, HeaderlessJournalIsRejected) {
  const std::string path = freshPath("headerless");
  writeRaw(path, "{\"schema\": \"rtlock-jour");  // died during the very first write
  try {
    (void)mergeJournals({path});
    FAIL() << "expected support::Error";
  } catch (const support::Error& error) {
    EXPECT_NE(std::string{error.what()}.find("no intact identity header"), std::string::npos);
  }
}

TEST(Merge, MissingJournalIsAnError) {
  EXPECT_THROW((void)mergeJournals({freshPath("absent")}), support::Error);
}

TEST(Merge, EmptyPathListIsAnError) {
  EXPECT_THROW((void)mergeJournals({}), support::Error);
}

TEST(Merge, FailureRowWinnerIsOrderIndependent) {
  const std::string a = writeJournal("failord_a", {errorRow("hra", 1, "zeta failure")});
  const std::string b = writeJournal("failord_b", {errorRow("hra", 1, "alpha failure")});
  const MergeResult ab = mergeJournals({a, b});
  const MergeResult ba = mergeJournals({b, a});
  ASSERT_EQ(ab.rows.size(), 1u);
  ASSERT_EQ(ba.rows.size(), 1u);
  EXPECT_EQ(ab.rows.begin()->second.errorWhat, ba.rows.begin()->second.errorWhat);
  EXPECT_EQ(journalRowToJson(ab.rows.begin()->second).dumpLine(),
            journalRowToJson(ba.rows.begin()->second).dumpLine());
}

TEST(Merge, MergedJournalBytesAreJournalOrderIndependent) {
  const std::string a = writeJournal("perm_a", {okRow("hra", 1), errorRow("era", 2)});
  const std::string b = writeJournal("perm_b", {okRow("era", 1), okRow("hra", 1)});
  const std::string c = writeJournal("perm_c", {okRow("hra", 2), errorRow("era", 2)});

  std::vector<std::string> order = {a, b, c};
  std::sort(order.begin(), order.end());
  std::string reference;
  do {
    const std::string out = freshPath("perm_out");
    writeMergedJournal(out, mergeJournals(order));
    const std::string bytes = slurp(out);
    if (reference.empty()) {
      reference = bytes;
    } else {
      EXPECT_EQ(bytes, reference);
    }
  } while (std::next_permutation(order.begin(), order.end()));
  ASSERT_FALSE(reference.empty());
}

TEST(Merge, MergedJournalRoundTripsThroughReadJournalFile) {
  const std::string a = writeJournal("rt_a", {okRow("hra", 1), timeoutRow("era", 1)});
  const std::string b = writeJournal("rt_b", {okRow("era", 1)});
  const std::string out = freshPath("rt_out");
  writeMergedJournal(out, mergeJournals({a, b}));

  const JournalFile file = readJournalFile(out);
  EXPECT_TRUE(file.headerIntact);
  EXPECT_FALSE(file.tornTail);
  ASSERT_EQ(file.rows.size(), 2u);
  // Sorted by (algorithm, seed): era/1 then hra/1; the era cell is the ok row.
  EXPECT_EQ(file.rows[0].id.algorithm, "era");
  EXPECT_TRUE(file.rows[0].ok());
  EXPECT_EQ(file.rows[1].id.algorithm, "hra");
  EXPECT_EQ(file.identity.designHash, "00000000deadbeef");
}

TEST(Merge, ByteMutationFuzzNeverCrashes) {
  // Fixed-seed fuzz: flip/insert/delete single bytes of a valid journal and
  // merge.  Every mutation must either merge cleanly (torn tail absorbed) or
  // throw support::Error — never crash, hang, or throw anything else.
  const std::string pristinePath =
      writeJournal("fuzz_base", {okRow("hra", 1), errorRow("era", 2), okRow("serial", 3)});
  const std::string pristine = slurp(pristinePath);
  ASSERT_FALSE(pristine.empty());

  std::mt19937 rng{0xC0FFEEu};
  std::uniform_int_distribution<std::size_t> pick(0, pristine.size() - 1);
  std::uniform_int_distribution<int> byte(0, 255);

  const std::string target = freshPath("fuzz_mut");
  std::size_t merges = 0;
  std::size_t rejections = 0;
  for (int round = 0; round < 300; ++round) {
    std::string mutated = pristine;
    switch (round % 3) {
      case 0:  // flip one byte
        mutated[pick(rng)] = static_cast<char>(byte(rng));
        break;
      case 1:  // delete one byte
        mutated.erase(pick(rng), 1);
        break;
      default:  // insert one byte
        mutated.insert(pick(rng), 1, static_cast<char>(byte(rng)));
        break;
    }
    writeRaw(target, mutated);
    try {
      const MergeResult merged = mergeJournals({target});
      EXPECT_LE(merged.rows.size(), 3u);
      ++merges;
    } catch (const support::Error&) {
      ++rejections;  // loud rejection is a valid outcome
    }
  }
  // The corpus must exercise both paths, otherwise the fuzz proves nothing.
  EXPECT_GT(merges, 0u);
  EXPECT_GT(rejections, 0u);
}

}  // namespace
}  // namespace rtlock::campaign
