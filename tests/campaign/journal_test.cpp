// Crash-safety contract of the campaign journal: single-line appends, torn
// tails discarded and truncated, interior corruption fatal, identity pinned.
#include "campaign/journal.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "support/diagnostics.hpp"

namespace rtlock::campaign {
namespace {

CampaignIdentity testIdentity() {
  CampaignIdentity identity;
  identity.designHash = "00000000deadbeef";
  identity.configHash = "00000000cafef00d";
  identity.design = "alu8";
  identity.config = "samples=1 rounds=30";
  return identity;
}

JournalRow okRow(const std::string& algorithm, std::uint64_t seed) {
  JournalRow row;
  row.id = {"00000000deadbeef", algorithm, seed, "00000000cafef00d"};
  row.status = "ok";
  row.attempts = 1;
  row.wallMs = 12.5;
  row.payload.set("mean_kpa_percent", 42.25);
  return row;
}

JournalRow errorRow(const std::string& algorithm, std::uint64_t seed) {
  JournalRow row;
  row.id = {"00000000deadbeef", algorithm, seed, "00000000cafef00d"};
  row.status = "error";
  row.attempts = 3;
  row.wallMs = 4.0;
  row.errorCode = "error";
  row.errorWhat = "injected fault";
  return row;
}

std::string freshPath(const std::string& tag) {
  const std::string path = ::testing::TempDir() + "journal_" + tag + ".jsonl";
  std::filesystem::remove(path);
  return path;
}

std::string slurp(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void appendRaw(const std::string& path, const std::string& bytes) {
  std::ofstream out{path, std::ios::binary | std::ios::app};
  out << bytes;
}

TEST(Journal, FreshFileStartsWithHeaderLine) {
  const std::string path = freshPath("fresh");
  const Journal journal{path, testIdentity()};
  const std::string text = slurp(path);
  ASSERT_FALSE(text.empty());
  EXPECT_NE(text.find("rtlock-journal/v1"), std::string::npos);
  EXPECT_NE(text.find("00000000deadbeef"), std::string::npos);
  EXPECT_EQ(text.back(), '\n');
  EXPECT_EQ(journal.reloadedRows(), 0u);
  EXPECT_FALSE(journal.recoveredTornTail());
}

TEST(Journal, AppendThenReloadRoundTrips) {
  const std::string path = freshPath("roundtrip");
  {
    Journal journal{path, testIdentity()};
    journal.append(okRow("hra", 1));
    journal.append(errorRow("era", 2));
  }
  Journal reloaded{path, testIdentity()};
  EXPECT_EQ(reloaded.reloadedRows(), 2u);
  const JournalRow& ok = reloaded.rows().at(okRow("hra", 1).id.key());
  EXPECT_TRUE(ok.ok());
  EXPECT_DOUBLE_EQ(ok.payload.at("mean_kpa_percent").asDouble(), 42.25);
  EXPECT_DOUBLE_EQ(ok.wallMs, 12.5);
  const JournalRow& error = reloaded.rows().at(errorRow("era", 2).id.key());
  EXPECT_EQ(error.status, "error");
  EXPECT_EQ(error.attempts, 3);
  EXPECT_EQ(error.errorCode, "error");
  EXPECT_EQ(error.errorWhat, "injected fault");
}

TEST(Journal, LaterRowForSameCellWins) {
  const std::string path = freshPath("lastwins");
  {
    Journal journal{path, testIdentity()};
    journal.append(errorRow("hra", 1));
    JournalRow retry = okRow("hra", 1);
    retry.attempts = 2;
    journal.append(retry);
  }
  const Journal reloaded{path, testIdentity()};
  const JournalRow& row = reloaded.rows().at(okRow("hra", 1).id.key());
  EXPECT_TRUE(row.ok());
  EXPECT_EQ(row.attempts, 2);
}

TEST(Journal, TornUnterminatedTailIsDiscardedAndTruncated) {
  const std::string path = freshPath("torn");
  {
    Journal journal{path, testIdentity()};
    journal.append(okRow("hra", 1));
  }
  const std::string intact = slurp(path);
  // Simulate a crash mid-append on every proper prefix of the next row: the
  // reload must keep the intact rows, drop the torn bytes, and truncate the
  // file back to the last good line.
  const std::string nextLine = journalRowToJson(okRow("hra", 2)).dumpLine();
  for (std::size_t cut = 1; cut < nextLine.size(); ++cut) {
    std::ofstream reset{path, std::ios::binary | std::ios::trunc};
    reset << intact;
    reset.close();
    appendRaw(path, nextLine.substr(0, cut));
    Journal recovered{path, testIdentity()};
    EXPECT_TRUE(recovered.recoveredTornTail()) << "cut=" << cut;
    EXPECT_EQ(recovered.reloadedRows(), 1u) << "cut=" << cut;
    EXPECT_EQ(slurp(path), intact) << "cut=" << cut;
  }
}

TEST(Journal, AppendAfterTornRecoveryStartsOnCleanLine) {
  const std::string path = freshPath("torn_append");
  {
    Journal journal{path, testIdentity()};
    journal.append(okRow("hra", 1));
  }
  appendRaw(path, "{\"cell\": \"half");
  {
    Journal recovered{path, testIdentity()};
    ASSERT_TRUE(recovered.recoveredTornTail());
    recovered.append(okRow("hra", 2));
  }
  const Journal reloaded{path, testIdentity()};
  EXPECT_FALSE(reloaded.recoveredTornTail());
  EXPECT_EQ(reloaded.reloadedRows(), 2u);
}

TEST(Journal, TerminatedButUnparseableFinalLineCountsAsTorn) {
  const std::string path = freshPath("torn_terminated");
  {
    Journal journal{path, testIdentity()};
    journal.append(okRow("hra", 1));
  }
  appendRaw(path, "{\"cell\": \"truncated mid token\n");
  const Journal recovered{path, testIdentity()};
  EXPECT_TRUE(recovered.recoveredTornTail());
  EXPECT_EQ(recovered.reloadedRows(), 1u);
}

TEST(Journal, InteriorCorruptionIsFatal) {
  const std::string path = freshPath("interior");
  {
    Journal journal{path, testIdentity()};
    journal.append(okRow("hra", 1));
  }
  appendRaw(path, "not json at all\n");
  appendRaw(path, journalRowToJson(okRow("hra", 2)).dumpLine() + "\n");
  EXPECT_THROW((Journal{path, testIdentity()}), support::Error);
}

TEST(Journal, IdentityMismatchIsFatal) {
  const std::string path = freshPath("identity");
  { const Journal journal{path, testIdentity()}; }
  CampaignIdentity other = testIdentity();
  other.configHash = "1111111111111111";
  EXPECT_THROW((Journal{path, other}), support::Error);
}

TEST(Journal, UnsupportedSchemaIsFatal) {
  const std::string path = freshPath("schema");
  {
    std::ofstream out{path, std::ios::binary | std::ios::trunc};
    out << "{\"schema\": \"rtlock-journal/v999\", \"design\": \"alu8\", \"design_hash\": "
           "\"00000000deadbeef\", \"config\": \"x\", \"config_hash\": \"00000000cafef00d\"}\n";
  }
  EXPECT_THROW((Journal{path, testIdentity()}), support::Error);
}

TEST(Journal, EmptyFileGetsFreshHeader) {
  const std::string path = freshPath("empty");
  { std::ofstream out{path, std::ios::binary | std::ios::trunc}; }
  const Journal journal{path, testIdentity()};
  EXPECT_EQ(journal.reloadedRows(), 0u);
  EXPECT_NE(slurp(path).find("rtlock-journal/v1"), std::string::npos);
}

TEST(Journal, TornHeaderRestartsFresh) {
  const std::string path = freshPath("torn_header");
  {
    std::ofstream out{path, std::ios::binary | std::ios::trunc};
    out << "{\"schema\": \"rtlock-jour";  // no newline: torn first append
  }
  const Journal journal{path, testIdentity()};
  EXPECT_EQ(journal.reloadedRows(), 0u);
  const std::string text = slurp(path);
  EXPECT_NE(text.find("rtlock-journal/v1"), std::string::npos);
  EXPECT_EQ(text.back(), '\n');
}

TEST(Journal, RowSerializationRoundTrips) {
  const JournalRow ok = okRow("hra", 7);
  const JournalRow okBack = journalRowFromJson(journalRowToJson(ok));
  EXPECT_EQ(okBack.id.key(), ok.id.key());
  EXPECT_TRUE(okBack.ok());
  EXPECT_EQ(okBack.payload.dumpLine(), ok.payload.dumpLine());

  const JournalRow error = errorRow("era", 9);
  const JournalRow errorBack = journalRowFromJson(journalRowToJson(error));
  EXPECT_EQ(errorBack.status, "error");
  EXPECT_EQ(errorBack.errorWhat, "injected fault");
  EXPECT_EQ(errorBack.attempts, 3);
}

TEST(Journal, RowWithUnknownStatusRejected) {
  support::JsonValue value = journalRowToJson(okRow("hra", 1));
  value.set("status", "weird");
  EXPECT_THROW(journalRowFromJson(value), support::Error);
}

TEST(Journal, CellKeyFormat) {
  const CellId id{"aaaa", "hra", 42, "bbbb"};
  EXPECT_EQ(id.key(), "aaaa:hra:42:bbbb");
}

}  // namespace
}  // namespace rtlock::campaign
