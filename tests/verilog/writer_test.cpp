#include "verilog/writer.hpp"

#include <gtest/gtest.h>

#include "rtl/builder.hpp"

namespace rtlock::verilog {
namespace {

TEST(WriterTest, EmitsModuleSkeleton) {
  rtl::ModuleBuilder b{"skeleton"};
  const auto a = b.input("a", 8);
  const auto y = b.output("y", 8);
  b.assign(y, b.ref(a));
  const std::string text = writeModule(b.take());
  EXPECT_NE(text.find("module skeleton (a, y);"), std::string::npos);
  EXPECT_NE(text.find("input [7:0] a;"), std::string::npos);
  EXPECT_NE(text.find("output [7:0] y;"), std::string::npos);
  EXPECT_NE(text.find("assign y = a;"), std::string::npos);
  EXPECT_NE(text.find("endmodule"), std::string::npos);
}

TEST(WriterTest, ScalarPortsHaveNoRange) {
  rtl::ModuleBuilder b{"scalar"};
  const auto a = b.input("clk", 1);
  const auto y = b.output("y", 1);
  b.assign(y, b.ref(a));
  const std::string text = writeModule(b.take());
  EXPECT_NE(text.find("input clk;"), std::string::npos);
  EXPECT_EQ(text.find("input [0:0]"), std::string::npos);
}

TEST(WriterTest, KeyPortEmission) {
  rtl::ModuleBuilder b{"locked"};
  const auto a = b.input("a", 8);
  const auto y = b.output("y", 8);
  b.assign(y, b.mux(rtl::makeKeyRef(0), b.add(b.ref(a), b.lit(1, 8)),
                    b.sub(b.ref(a), b.lit(1, 8))));
  rtl::Module m = b.take();
  m.allocateKeyBits(2);
  const std::string text = writeModule(m);
  EXPECT_NE(text.find("module locked (a, y, lock_key);"), std::string::npos);
  EXPECT_NE(text.find("input [1:0] lock_key;"), std::string::npos);
  EXPECT_NE(text.find("lock_key[0] ?"), std::string::npos);
}

TEST(WriterTest, SizedConstants) {
  rtl::ModuleBuilder b{"consts"};
  const auto y = b.output("y", 16);
  b.assign(y, b.lit(0xBEEF, 16));
  const std::string text = writeModule(b.take());
  EXPECT_NE(text.find("16'hbeef"), std::string::npos);
}

TEST(WriterTest, PrecedenceAwareParentheses) {
  rtl::ModuleBuilder b{"expr"};
  const auto a = b.input("a", 8);
  const auto c = b.input("b", 8);
  const auto y = b.output("y", 8);
  const auto z = b.output("z", 8);
  // (a + b) * a needs parens; a + b * a does not.
  b.assign(y, b.mul(b.add(b.ref(a), b.ref(c)), b.ref(a)));
  b.assign(z, b.add(b.ref(a), b.mul(b.ref(c), b.ref(a))));
  const std::string text = writeModule(b.take());
  EXPECT_NE(text.find("assign y = (a + b) * a;"), std::string::npos);
  EXPECT_NE(text.find("assign z = a + b * a;"), std::string::npos);
}

TEST(WriterTest, SequentialProcess) {
  rtl::ModuleBuilder b{"seq"};
  const auto clk = b.input("clk", 1);
  const auto d = b.input("d", 4);
  const auto q = b.reg("q", 4);
  const auto y = b.output("y", 4);
  b.regAssign(clk, q, b.ref(d));
  b.assign(y, b.ref(q));
  const std::string text = writeModule(b.take());
  EXPECT_NE(text.find("always @(posedge clk) begin"), std::string::npos);
  EXPECT_NE(text.find("q <= d;"), std::string::npos);
  EXPECT_NE(text.find("reg [3:0] q;"), std::string::npos);
}

TEST(WriterTest, ExprRendering) {
  rtl::ModuleBuilder b{"ctx"};
  const auto a = b.input("a", 8);
  auto expr = b.add(b.ref(a), b.lit(3, 8));
  const rtl::Module m = b.take();
  EXPECT_EQ(writeExpr(*expr, m), "a + 8'h3");
}

TEST(WriterTest, NestedTernaryParenthesized) {
  rtl::ModuleBuilder b{"mux2"};
  const auto s = b.input("s", 1);
  const auto a = b.input("a", 4);
  const auto y = b.output("y", 4);
  b.assign(y, b.mux(b.ref(s), b.mux(b.ref(s), b.ref(a), b.lit(0, 4)), b.lit(1, 4)));
  const std::string text = writeModule(b.take());
  EXPECT_NE(text.find("s ? (s ? a : 4'h0) : 4'h1"), std::string::npos);
}

}  // namespace
}  // namespace rtlock::verilog
