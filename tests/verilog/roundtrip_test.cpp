// Property tests: writeModule(parse(text)) and parse(writeModule(m)) are
// structural fixed points, for hand-written sources, builder-made modules,
// every benchmark generator, and locked designs.
#include <gtest/gtest.h>

#include "core/algorithms.hpp"
#include "designs/registry.hpp"
#include "rtl/builder.hpp"
#include "verilog/parser.hpp"
#include "verilog/writer.hpp"

namespace rtlock::verilog {
namespace {

/// parse -> write -> parse -> compare (write output is the canonical form).
void expectStableRoundTrip(const rtl::Module& module) {
  const std::string once = writeModule(module);
  const rtl::Module reparsed = parseModule(once);
  EXPECT_TRUE(structurallyEqual(module, reparsed)) << "non-canonical round trip:\n" << once;
  const std::string twice = writeModule(reparsed);
  EXPECT_EQ(once, twice);
}

TEST(RoundTripTest, CombinationalModule) {
  rtl::ModuleBuilder b{"comb"};
  const auto a = b.input("a", 8);
  const auto c = b.input("b", 8);
  const auto w = b.wire("w", 8);
  const auto y = b.output("y", 8);
  b.assign(w, b.add(b.mul(b.ref(a), b.ref(c)), b.lit(7, 8)));
  b.assign(y, b.mux(b.bin(rtl::OpKind::Lt, b.ref(a), b.ref(c)), b.ref(w), b.notE(b.ref(w))));
  expectStableRoundTrip(b.take());
}

TEST(RoundTripTest, SequentialModule) {
  rtl::ModuleBuilder b{"seq"};
  const auto clk = b.input("clk", 1);
  const auto d = b.input("d", 16);
  const auto q = b.reg("q", 16);
  const auto y = b.output("y", 16);
  b.regAssign(clk, q, b.add(b.ref(q), b.ref(d)));
  b.assign(y, b.shr(b.ref(q), b.lit(2, 3)));
  expectStableRoundTrip(b.take());
}

TEST(RoundTripTest, AllOperatorsSurvive) {
  rtl::ModuleBuilder b{"allops"};
  const auto a = b.input("a", 16);
  const auto c = b.input("b", 16);
  int wireId = 0;
  for (int k = 0; k < rtl::kOpKindCount; ++k) {
    const auto w = b.wire("w" + std::to_string(wireId++), 16);
    b.assign(w, b.bin(static_cast<rtl::OpKind>(k), b.ref(a), b.ref(c)));
  }
  const auto y = b.output("y", 16);
  b.assign(y, b.ref(a));
  expectStableRoundTrip(b.take());
}

TEST(RoundTripTest, UnaryOperatorsSurvive) {
  rtl::ModuleBuilder b{"unary"};
  const auto a = b.input("a", 8);
  const auto w0 = b.wire("w0", 8);
  const auto w1 = b.wire("w1", 8);
  const auto w2 = b.wire("w2", 1);
  const auto w3 = b.wire("w3", 1);
  const auto w4 = b.wire("w4", 1);
  const auto w5 = b.wire("w5", 1);
  b.assign(w0, rtl::makeUnary(rtl::UnaryOp::Neg, b.ref(a)));
  b.assign(w1, rtl::makeUnary(rtl::UnaryOp::BitNot, b.ref(a)));
  b.assign(w2, rtl::makeUnary(rtl::UnaryOp::LogNot, b.ref(a)));
  b.assign(w3, rtl::makeUnary(rtl::UnaryOp::RedAnd, b.ref(a)));
  b.assign(w4, rtl::makeUnary(rtl::UnaryOp::RedOr, b.ref(a)));
  b.assign(w5, rtl::makeUnary(rtl::UnaryOp::RedXor, b.ref(a)));
  const auto y = b.output("y", 8);
  b.assign(y, b.ref(w0));
  expectStableRoundTrip(b.take());
}

TEST(RoundTripTest, CaseAndIfStatements) {
  const auto m = parseModule(R"(
    module fsm (input clk, input [1:0] sel, input [3:0] a, output reg [3:0] y);
      reg [3:0] nxt;
      always @(*) begin
        nxt = 4'h0;
        case (sel)
          2'h0: nxt = a;
          2'h1, 2'h2: if (a > 4'h7) nxt = ~a; else nxt = a;
          default: nxt = 4'hf;
        endcase
      end
      always @(posedge clk) begin
        y <= nxt;
      end
    endmodule
  )");
  expectStableRoundTrip(m);
}

class BenchmarkRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(BenchmarkRoundTrip, GeneratorOutputSurvives) {
  expectStableRoundTrip(designs::makeBenchmark(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchmarkRoundTrip,
                         ::testing::ValuesIn(designs::benchmarkNames()),
                         [](const auto& info) { return info.param; });

class LockedRoundTrip : public ::testing::TestWithParam<lock::Algorithm> {};

TEST_P(LockedRoundTrip, LockedDesignSurvives) {
  rtl::Module m = designs::makeBenchmark("FIR");
  support::Rng rng{99};
  lock::LockEngine engine{m, lock::PairTable::fixed()};
  const int budget = engine.initialLockableOps() / 2;
  (void)lock::lockWithAlgorithm(engine, GetParam(), budget, rng);
  expectStableRoundTrip(m);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, LockedRoundTrip,
                         ::testing::Values(lock::Algorithm::AssureSerial,
                                           lock::Algorithm::AssureRandom,
                                           lock::Algorithm::Hra, lock::Algorithm::Greedy,
                                           lock::Algorithm::Era),
                         [](const auto& info) {
                           return std::string{lock::algorithmName(info.param)} == "ASSURE-random"
                                      ? std::string{"AssureRandom"}
                                      : std::string{lock::algorithmName(info.param)};
                         });

}  // namespace
}  // namespace rtlock::verilog
