// Front-end constructs that only external (non-registry) Verilog exercises:
// parameters, ANSI direction carry-over, wire declaration initializers, and
// the targeted rejections for out-of-subset constructs.  These close the
// parser gaps the 14 in-tree designs never hit (the writer never emits
// them), so the CLI can consume arbitrary user netlists.
#include <gtest/gtest.h>

#include "sim/evaluator.hpp"
#include "support/diagnostics.hpp"
#include "verilog/parser.hpp"
#include "verilog/writer.hpp"

namespace rtlock::verilog {
namespace {

void expectParseError(const char* source, const char* needle) {
  try {
    (void)parseModule(source);
    FAIL() << "expected parse error mentioning: " << needle;
  } catch (const support::Error& error) {
    EXPECT_NE(std::string{error.what()}.find(needle), std::string::npos) << error.what();
  }
}

TEST(ExternalSubsetTest, ParameterPortsDriveRangesAndExpressions) {
  const rtl::Module module = parseModule(R"(
module scaled #(parameter W = 12, parameter GAIN = 3) (a, y);
  input [W-1:0] a;
  output [W-1:0] y;
  assign y = a * GAIN;
endmodule
)");
  EXPECT_EQ(module.signal(*module.findSignal("a")).width, 12);
  EXPECT_EQ(module.signal(*module.findSignal("y")).width, 12);

  sim::Evaluator eval{module};
  eval.setValue(*module.findSignal("a"), sim::BitVector{std::uint64_t{5}, 12});
  eval.settle();
  EXPECT_EQ(eval.value(*module.findSignal("y")).toUint64(), 15u);
}

TEST(ExternalSubsetTest, LocalparamAndParameterItemsActAsConstants) {
  const rtl::Module module = parseModule(R"(
module bias (x, y);
  parameter OFFSET = 7;
  localparam [3:0] STEP = 2;
  input [7:0] x;
  output [7:0] y;
  assign y = x + OFFSET + STEP;
endmodule
)");
  sim::Evaluator eval{module};
  eval.setValue(*module.findSignal("x"), sim::BitVector{std::uint64_t{1}, 8});
  eval.settle();
  EXPECT_EQ(eval.value(*module.findSignal("y")).toUint64(), 10u);
}

TEST(ExternalSubsetTest, ConstantExpressionsUseStandardPrecedence) {
  const rtl::Module module = parseModule(R"(
module prec (y, m);
  parameter P = 1 + 2 * 8;
  output [P-1:0] y;
  output [2*4-1:0] m;
  assign y = P;
  assign m = (1 + 1) * 3;
endmodule
)");
  EXPECT_EQ(module.signal(*module.findSignal("y")).width, 17);  // not (1+2)*8 = 24
  EXPECT_EQ(module.signal(*module.findSignal("m")).width, 8);
}

TEST(ExternalSubsetTest, ParametersIndexBitSelectsInExpressions) {
  const rtl::Module module = parseModule(R"(
module sel #(parameter W = 8) (data, msb, top);
  input [W-1:0] data;
  output msb;
  output [1:0] top;
  assign msb = data[W-1];
  assign top = data[W-1:W-2];
endmodule
)");
  sim::Evaluator eval{module};
  eval.setValue(*module.findSignal("data"), sim::BitVector{std::uint64_t{0x80}, 8});
  eval.settle();
  EXPECT_EQ(eval.value(*module.findSignal("msb")).toUint64(), 1u);
  EXPECT_EQ(eval.value(*module.findSignal("top")).toUint64(), 0b10u);
}

TEST(ExternalSubsetTest, AnsiDirectionCarryOverDeclaresSiblingPorts) {
  const rtl::Module module = parseModule(R"(
module pair (
  input [7:0] a, b,
  input strobe,
  output [7:0] lo, hi
);
  assign lo = strobe ? a : b;
  assign hi = strobe ? b : a;
endmodule
)");
  for (const char* name : {"a", "b"}) {
    const rtl::Signal& signal = module.signal(*module.findSignal(name));
    EXPECT_EQ(signal.width, 8);
    EXPECT_EQ(signal.dir, rtl::PortDir::Input);
  }
  EXPECT_EQ(module.signal(*module.findSignal("strobe")).width, 1);
  for (const char* name : {"lo", "hi"}) {
    const rtl::Signal& signal = module.signal(*module.findSignal(name));
    EXPECT_EQ(signal.width, 8);
    EXPECT_EQ(signal.dir, rtl::PortDir::Output);
  }
}

TEST(ExternalSubsetTest, WireInitializerDesugarsToContinuousAssign) {
  const rtl::Module module = parseModule(R"(
module init (a, b, y);
  input [3:0] a;
  input [3:0] b;
  output [3:0] y;
  wire [3:0] s = a ^ b, t = a & b;
  assign y = s | t;
endmodule
)");
  EXPECT_EQ(module.contAssigns().size(), 3u);
  sim::Evaluator eval{module};
  eval.setValue(*module.findSignal("a"), sim::BitVector{std::uint64_t{0b1100}, 4});
  eval.setValue(*module.findSignal("b"), sim::BitVector{std::uint64_t{0b1010}, 4});
  eval.settle();
  EXPECT_EQ(eval.value(*module.findSignal("y")).toUint64(), 0b1110u);
}

TEST(ExternalSubsetTest, ParameterizedModuleRoundTripsThroughWriter) {
  // The writer resolves parameters into concrete widths/constants; the
  // emitted text must re-parse to an identical module (fixed-point).
  const rtl::Module module = parseModule(R"(
module rt #(parameter W = 6) (
  input [W-1:0] a, b,
  output [W-1:0] y
);
  localparam KIND = 1;
  wire [W-1:0] m = (a + b) >> KIND;
  assign y = m;
endmodule
)");
  const std::string once = writeModule(module);
  const std::string twice = writeModule(parseModule(once));
  EXPECT_EQ(once, twice);
}

TEST(ExternalSubsetTest, SignedDeclarationsFailWithTargetedMessage) {
  expectParseError(R"(
module s (a, y);
  input signed [7:0] a;
  output [7:0] y;
  assign y = a;
endmodule
)",
                   "signed");
}

TEST(ExternalSubsetTest, NegedgeFailsWithTargetedMessage) {
  expectParseError(R"(
module n (clk, q);
  input clk;
  output reg q;
  always @(negedge clk) q <= 1;
endmodule
)",
                   "negedge");
}

TEST(ExternalSubsetTest, AsyncResetSensitivityFailsWithTargetedMessage) {
  expectParseError(R"(
module r (clk, rst, q);
  input clk;
  input rst;
  output reg q;
  always @(posedge clk or posedge rst) q <= 1;
endmodule
)",
                   "sensitivity");
}

TEST(ExternalSubsetTest, ParameterMisuseFails) {
  expectParseError("module p #(parameter W = 8) (a); input [W-1:0] a; parameter W = 9;\n"
                   "endmodule",
                   "declared twice");
  expectParseError("module p (y); output [3:0] y; assign y = MISSING; endmodule",
                   "undeclared");
  expectParseError("module p #(parameter W = 4) (y); output [W-1:0] y; assign y = W[0];\n"
                   "endmodule",
                   "parameter");
  expectParseError("module p (W); parameter W = 4; input [3:0] W; endmodule", "parameter");
  expectParseError("module p #(parameter N = 0 - 2) (y); output [3:0] y; assign y = N;\n"
                   "endmodule",
                   "negative");
}

TEST(ExternalSubsetTest, RegInitializerFailsWithTargetedMessage) {
  expectParseError("module p (y); output y; reg q = 1; assign y = q; endmodule",
                   "reg initializers");
}

}  // namespace
}  // namespace rtlock::verilog
