#include "verilog/lexer.hpp"

#include <gtest/gtest.h>

#include "support/diagnostics.hpp"

namespace rtlock::verilog {
namespace {

std::vector<Token> lex(std::string_view source) { return Lexer{source}.tokenize(); }

TEST(LexerTest, KeywordsAndIdentifiers) {
  const auto tokens = lex("module foo endmodule");
  ASSERT_EQ(tokens.size(), 4u);  // incl. EOF
  EXPECT_EQ(tokens[0].kind, TokenKind::KwModule);
  EXPECT_EQ(tokens[1].kind, TokenKind::Identifier);
  EXPECT_EQ(tokens[1].text, "foo");
  EXPECT_EQ(tokens[2].kind, TokenKind::KwEndmodule);
  EXPECT_EQ(tokens[3].kind, TokenKind::EndOfFile);
}

TEST(LexerTest, SizedLiterals) {
  const auto tokens = lex("8'hFF 4'b1010 16'd255 6'o17");
  EXPECT_EQ(tokens[0].value, 0xFFu);
  EXPECT_EQ(tokens[0].numberWidth, 8);
  EXPECT_EQ(tokens[1].value, 0b1010u);
  EXPECT_EQ(tokens[1].numberWidth, 4);
  EXPECT_EQ(tokens[2].value, 255u);
  EXPECT_EQ(tokens[2].numberWidth, 16);
  EXPECT_EQ(tokens[3].value, 017u);
}

TEST(LexerTest, UnsizedLiterals) {
  const auto tokens = lex("42 'd9");
  EXPECT_EQ(tokens[0].value, 42u);
  EXPECT_EQ(tokens[0].numberWidth, 0);
  EXPECT_EQ(tokens[1].value, 9u);
  EXPECT_EQ(tokens[1].numberWidth, 0);
}

TEST(LexerTest, UnderscoresInLiterals) {
  const auto tokens = lex("32'hDEAD_BEEF 1_000");
  EXPECT_EQ(tokens[0].value, 0xDEADBEEFu);
  EXPECT_EQ(tokens[1].value, 1000u);
}

TEST(LexerTest, OperatorsGreedyMatching) {
  const auto tokens = lex("<< <= < >>> >> > ** * ~^ ^~ ~ ^ && & || | == = != !");
  const std::vector<TokenKind> expected{
      TokenKind::Shl,       TokenKind::LtEq,   TokenKind::Lt,     TokenKind::AShr,
      TokenKind::Shr,       TokenKind::Gt,     TokenKind::StarStar, TokenKind::Star,
      TokenKind::TildeCaret, TokenKind::TildeCaret, TokenKind::Tilde, TokenKind::Caret,
      TokenKind::AmpAmp,    TokenKind::Amp,    TokenKind::PipePipe, TokenKind::Pipe,
      TokenKind::EqEq,      TokenKind::Assign, TokenKind::BangEq, TokenKind::Bang,
  };
  ASSERT_GE(tokens.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(tokens[i].kind, expected[i]) << "token " << i;
  }
}

TEST(LexerTest, CommentsAreSkipped) {
  const auto tokens = lex("a // line comment\nb /* block\ncomment */ c");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
  EXPECT_EQ(tokens[2].text, "c");
}

TEST(LexerTest, LineAndColumnTracking) {
  const auto tokens = lex("a\n  b");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[0].column, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[1].column, 3);
}

TEST(LexerTest, EscapedIdentifier) {
  const auto tokens = lex("\\weird$name rest");
  EXPECT_EQ(tokens[0].kind, TokenKind::Identifier);
  EXPECT_EQ(tokens[0].text, "weird$name");
  EXPECT_EQ(tokens[1].text, "rest");
}

TEST(LexerTest, UnterminatedBlockCommentThrows) {
  EXPECT_THROW(lex("a /* never closed"), support::Error);
}

TEST(LexerTest, OversizedLiteralThrows) {
  EXPECT_THROW(lex("128'hFFFF_FFFF_FFFF_FFFF_1"), support::Error);
}

// '#' graduated into the vocabulary with parameter ports; '`' (macros are
// outside the subset) stays unknown.
TEST(LexerTest, UnknownCharacterThrows) { EXPECT_THROW(lex("a ` b"), support::Error); }

TEST(LexerTest, BasedLiteralWithoutDigitsThrows) { EXPECT_THROW(lex("8'h"), support::Error); }

}  // namespace
}  // namespace rtlock::verilog
