// Multi-module designs through the full frontend/backend.
#include <gtest/gtest.h>

#include "core/algorithms.hpp"
#include "verilog/parser.hpp"
#include "verilog/writer.hpp"

namespace rtlock::verilog {
namespace {

constexpr const char* kTwoModules = R"(
module stage1 (input [7:0] a, output [7:0] y);
  assign y = a + 8'h3;
endmodule

module stage2 (input [7:0] a, input [7:0] b, output [7:0] y);
  wire [7:0] t;
  assign t = a * b;
  assign y = t - a;
endmodule
)";

TEST(DesignTest, ParsesAllModules) {
  const rtl::Design design = parseDesign(kTwoModules);
  ASSERT_EQ(design.moduleCount(), 2u);
  EXPECT_EQ(design.module(0).name(), "stage1");
  EXPECT_EQ(design.module(1).name(), "stage2");
}

TEST(DesignTest, WriteDesignRoundTrips) {
  const rtl::Design design = parseDesign(kTwoModules);
  const std::string text = writeDesign(design);
  const rtl::Design reparsed = parseDesign(text);
  ASSERT_EQ(reparsed.moduleCount(), 2u);
  EXPECT_TRUE(structurallyEqual(design.module(0), reparsed.module(0)));
  EXPECT_TRUE(structurallyEqual(design.module(1), reparsed.module(1)));
  EXPECT_EQ(writeDesign(reparsed), text);
}

TEST(DesignTest, PerModuleLockingKeysAreIndependent) {
  rtl::Design design = parseDesign(kTwoModules);
  support::Rng rng{1};
  for (std::size_t i = 0; i < design.moduleCount(); ++i) {
    lock::LockEngine engine{design.module(i), lock::PairTable::fixed()};
    lock::assureRandomLock(engine, engine.initialLockableOps(), rng);
  }
  EXPECT_EQ(design.module(0).keyWidth(), 1);
  EXPECT_EQ(design.module(1).keyWidth(), 2);
  // Both locked modules emit and re-parse cleanly in one file.
  const rtl::Design reparsed = parseDesign(writeDesign(design));
  EXPECT_EQ(reparsed.module(0).keyWidth(), 1);
  EXPECT_EQ(reparsed.module(1).keyWidth(), 2);
}

TEST(DesignTest, EmptyInputRejected) { EXPECT_THROW(parseDesign("  \n"), support::Error); }

}  // namespace
}  // namespace rtlock::verilog
