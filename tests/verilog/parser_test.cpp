#include "verilog/parser.hpp"

#include <gtest/gtest.h>

#include "rtl/stats.hpp"
#include "support/diagnostics.hpp"

namespace rtlock::verilog {
namespace {

TEST(ParserTest, ClassicPortStyle) {
  const auto m = parseModule(R"(
    module adder (a, b, y);
      input [7:0] a;
      input [7:0] b;
      output [7:0] y;
      assign y = a + b;
    endmodule
  )");
  EXPECT_EQ(m.name(), "adder");
  EXPECT_EQ(m.ports().size(), 3u);
  ASSERT_EQ(m.contAssigns().size(), 1u);
  EXPECT_EQ(m.contAssigns()[0]->value().kind(), rtl::ExprKind::Binary);
}

TEST(ParserTest, AnsiPortStyle) {
  const auto m = parseModule(R"(
    module f (input [3:0] a, input wire [3:0] b, output reg [3:0] q);
      always @(*) q = a & b;
    endmodule
  )");
  EXPECT_EQ(m.ports().size(), 3u);
  const auto q = m.findSignal("q");
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(m.signal(*q).net, rtl::NetKind::Reg);
  EXPECT_EQ(m.processes().size(), 1u);
}

TEST(ParserTest, ExpressionPrecedence) {
  const auto m = parseModule(R"(
    module p (input [7:0] a, input [7:0] b, output [7:0] y);
      assign y = a + b * a;
    endmodule
  )");
  const auto& root = static_cast<const rtl::BinaryExpr&>(m.contAssigns()[0]->value());
  EXPECT_EQ(root.op(), rtl::OpKind::Add);
  EXPECT_EQ(static_cast<const rtl::BinaryExpr&>(root.rhs()).op(), rtl::OpKind::Mul);
}

TEST(ParserTest, PowerIsRightAssociative) {
  const auto m = parseModule(R"(
    module p (input [7:0] a, output [7:0] y);
      assign y = a ** a ** a;
    endmodule
  )");
  const auto& root = static_cast<const rtl::BinaryExpr&>(m.contAssigns()[0]->value());
  EXPECT_EQ(root.op(), rtl::OpKind::Pow);
  EXPECT_EQ(root.lhs().kind(), rtl::ExprKind::SignalRef);
  EXPECT_EQ(root.rhs().kind(), rtl::ExprKind::Binary);
}

TEST(ParserTest, TernaryAndComparison) {
  const auto m = parseModule(R"(
    module p (input [7:0] a, input [7:0] b, output [7:0] y);
      assign y = (a > b) ? a - b : b - a;
    endmodule
  )");
  EXPECT_EQ(m.contAssigns()[0]->value().kind(), rtl::ExprKind::Ternary);
}

TEST(ParserTest, ConcatAndReplication) {
  const auto m = parseModule(R"(
    module p (input [3:0] a, output [7:0] y, output [7:0] z);
      assign y = {a, a[3:2], a[1], 1'b0};
      assign z = {2{a}};
    endmodule
  )");
  EXPECT_EQ(m.contAssigns()[0]->value().width(), 8);
  EXPECT_EQ(m.contAssigns()[1]->value().width(), 8);
}

TEST(ParserTest, SequentialAlwaysBlock) {
  const auto m = parseModule(R"(
    module p (input clk, input [3:0] d, output reg [3:0] q);
      always @(posedge clk) begin
        q <= d;
      end
    endmodule
  )");
  ASSERT_EQ(m.processes().size(), 1u);
  EXPECT_EQ(m.processes()[0]->kind, rtl::ProcessKind::Sequential);
  EXPECT_EQ(m.signal(m.processes()[0]->clock).name, "clk");
}

TEST(ParserTest, CaseStatement) {
  const auto m = parseModule(R"(
    module p (input [1:0] sel, input [3:0] a, output reg [3:0] y);
      always @(*) begin
        case (sel)
          2'd0: y = a;
          2'd1, 2'd2: y = ~a;
          default: y = 4'h0;
        endcase
      end
    endmodule
  )");
  ASSERT_EQ(m.processes().size(), 1u);
  // Find the case statement inside the block.
  const auto& block = static_cast<const rtl::BlockStmt&>(*m.processes()[0]->body);
  auto& mutableBlock = const_cast<rtl::BlockStmt&>(block);
  const auto& caseStmt = static_cast<const rtl::CaseStmt&>(*mutableBlock.stmtSlotAt(0));
  EXPECT_EQ(caseStmt.items().size(), 2u);
  EXPECT_EQ(caseStmt.items()[1].labels.size(), 2u);
  EXPECT_TRUE(caseStmt.hasDefault());
}

TEST(ParserTest, KeyPortBecomesKeyRefs) {
  const auto m = parseModule(R"(
    module locked (a, y, lock_key);
      input [7:0] a;
      output [7:0] y;
      input [1:0] lock_key;
      assign y = lock_key[0] ? a + 8'd1 : a - 8'd1;
    endmodule
  )");
  EXPECT_EQ(m.keyWidth(), 2);
  EXPECT_FALSE(m.findSignal("lock_key").has_value());  // not an ordinary signal
  const auto& mux = static_cast<const rtl::TernaryExpr&>(m.contAssigns()[0]->value());
  EXPECT_TRUE(mux.isKeyMux());
}

TEST(ParserTest, MultipleModules) {
  const auto design = parseDesign(R"(
    module a (input x, output y); assign y = x; endmodule
    module b (input x, output y); assign y = ~x; endmodule
  )");
  EXPECT_EQ(design.moduleCount(), 2u);
}

TEST(ParserTest, PartSelectLValue) {
  const auto m = parseModule(R"(
    module p (input [3:0] a, output [7:0] y);
      assign y[3:0] = a;
      assign y[7] = a[0];
    endmodule
  )");
  ASSERT_EQ(m.contAssigns().size(), 2u);
  EXPECT_EQ(m.contAssigns()[0]->target().range, std::make_pair(3, 0));
  EXPECT_EQ(m.contAssigns()[1]->target().range, std::make_pair(7, 7));
}

TEST(ParserTest, ErrorsCarryLocation) {
  try {
    (void)parseModule("module m (input a, output y);\n  assign y = q;\nendmodule");
    FAIL() << "expected parse error";
  } catch (const support::Error& error) {
    EXPECT_NE(std::string{error.what()}.find("line 2"), std::string::npos);
    EXPECT_NE(std::string{error.what()}.find("undeclared"), std::string::npos);
  }
}

TEST(ParserTest, RejectsUndeclaredPortDirection) {
  EXPECT_THROW(parseModule("module m (a); endmodule"), support::Error);
}

TEST(ParserTest, RejectsBlockingInSequential) {
  EXPECT_THROW(parseModule(R"(
    module m (input clk, input d, output reg q);
      always @(posedge clk) q = d;
    endmodule
  )"),
               support::Error);
}

TEST(ParserTest, RejectsOutOfRangeSelect) {
  EXPECT_THROW(parseModule(R"(
    module m (input [3:0] a, output y);
      assign y = a[4];
    endmodule
  )"),
               support::Error);
}

TEST(ParserTest, UnsizedLiteralWidthOption) {
  ParserOptions options;
  options.unsizedLiteralWidth = 8;
  const auto m = parseModule(R"(
    module m (input [7:0] a, output [7:0] y);
      assign y = a + 1;
    endmodule
  )",
                             options);
  const auto& add = static_cast<const rtl::BinaryExpr&>(m.contAssigns()[0]->value());
  EXPECT_EQ(add.rhs().width(), 8);
}

}  // namespace
}  // namespace rtlock::verilog
