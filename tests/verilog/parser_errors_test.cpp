// Negative-path coverage for the Verilog frontend: every rejected construct
// must fail with a support::Error (never a crash or silent acceptance).
#include <gtest/gtest.h>

#include "support/diagnostics.hpp"
#include "verilog/parser.hpp"

namespace rtlock::verilog {
namespace {

void expectRejected(const char* source, const char* fragment) {
  try {
    (void)parseModule(source);
    FAIL() << "expected rejection of: " << source;
  } catch (const support::Error& error) {
    EXPECT_NE(std::string{error.what()}.find(fragment), std::string::npos)
        << "got: " << error.what();
  }
}

TEST(ParserErrorsTest, EmptyInput) { expectRejected("", "expected 'module'"); }

TEST(ParserErrorsTest, MissingSemicolonAfterHeader) {
  expectRejected("module m (input a, output y) endmodule", "';'");
}

TEST(ParserErrorsTest, MissingEndmodule) {
  expectRejected("module m (input a, output y); assign y = a;", "unsupported module item");
}

TEST(ParserErrorsTest, DuplicatePortDeclaration) {
  expectRejected("module m (a); input a; input a; endmodule", "declared twice");
}

TEST(ParserErrorsTest, InputRegIsIllegal) {
  expectRejected("module m (input reg a, output y); endmodule", "cannot be declared 'reg'");
}

TEST(ParserErrorsTest, NonZeroLsbRange) {
  expectRejected("module m (input [7:4] a, output y); assign y = a[4]; endmodule",
                 "[msb:0]");
}

TEST(ParserErrorsTest, AssignToKeyPort) {
  expectRejected(R"(
    module m (a, y, lock_key);
      input a; output y; input [3:0] lock_key;
      assign lock_key = a;
    endmodule)",
                 "cannot assign");
}

TEST(ParserErrorsTest, KeyPortAsOutput) {
  expectRejected("module m (input a, output [3:0] lock_key); endmodule", "must be an input");
}

TEST(ParserErrorsTest, DynamicBitSelect) {
  expectRejected(R"(
    module m (input [7:0] a, input [2:0] i, output y);
      assign y = a[i];
    endmodule)",
                 "constant bit/part-select");
}

TEST(ParserErrorsTest, UnbalancedParentheses) {
  expectRejected("module m (input a, output y); assign y = (a; endmodule", "')'");
}

TEST(ParserErrorsTest, MissingTernaryColon) {
  expectRejected("module m (input a, output y); assign y = a ? a ; endmodule", "':'");
}

TEST(ParserErrorsTest, NonBlockingInCombinational) {
  expectRejected(R"(
    module m (input a, output reg y);
      always @(*) y <= a;
    endmodule)",
                 "blocking");
}

TEST(ParserErrorsTest, UnsupportedSensitivityList) {
  expectRejected(R"(
    module m (input clk, input a, output reg y);
      always @(negedge clk) y <= a;
    endmodule)",
                 "sensitivity");
}

TEST(ParserErrorsTest, CaseLabelMustBeConstant) {
  expectRejected(R"(
    module m (input [1:0] s, input [1:0] a, output reg y);
      always @(*) begin
        case (s)
          a: y = 1'b1;
        endcase
      end
    endmodule)",
                 "constant case label");
}

TEST(ParserErrorsTest, DuplicateDefaultArm) {
  expectRejected(R"(
    module m (input [1:0] s, output reg y);
      always @(*) begin
        case (s)
          default: y = 1'b0;
          default: y = 1'b1;
        endcase
      end
    endmodule)",
                 "duplicate default");
}

TEST(ParserErrorsTest, WideSignalRejected) {
  expectRejected("module m (input [64:0] a, output y); assign y = a[0]; endmodule",
                 "64-bit");
}

TEST(ParserErrorsTest, ConflictingRedeclarationWidth) {
  expectRejected(R"(
    module m (a, y);
      input [7:0] a; output y;
      wire [3:0] a;
      assign y = a[0];
    endmodule)",
                 "conflicting width");
}

TEST(ParserErrorsTest, PartSelectOutOfRange) {
  expectRejected("module m (input [3:0] a, output [7:0] y); assign y[9:0] = a; endmodule",
                 "out of range");
}

TEST(ParserErrorsTest, ReplicationCountZero) {
  expectRejected("module m (input a, output y); assign y = {0{a}}; endmodule",
                 "replication count");
}

TEST(ParserErrorsTest, GoodErrorLocationReporting) {
  try {
    (void)parseModule("module m (input a,\n output y);\n assign z = a;\nendmodule");
    FAIL();
  } catch (const support::Error& error) {
    EXPECT_NE(std::string{error.what()}.find("line 3"), std::string::npos) << error.what();
  }
}

}  // namespace
}  // namespace rtlock::verilog
