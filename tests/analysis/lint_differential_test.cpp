// Differential guarantee of the L201 "free key bit" proof.
//
// Static claim: a flagged bit's cone of influence reaches no output, so no
// stimulus can ever expose a wrong guess.  Dynamic check: flipping exactly
// that bit of the correct key must measure *exactly* zero output corruption
// under sim::Harness sweeps — across every registry design and three key
// budgets.  The converse is checked where it is decidable: on a constructed
// design every live bit demonstrably corrupts, and on the registry at least
// one early non-flagged bit per cell does (deep xor-tree and multiplier bits
// can need astronomically rare stimulus, so per-bit converse coverage on the
// registry would assert more than random vectors can witness).
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>

#include "analysis/lint.hpp"
#include "core/algorithms.hpp"
#include "designs/registry.hpp"
#include "rtl/builder.hpp"
#include "sim/harness.hpp"
#include "support/rng.hpp"

namespace rtlock::analysis {
namespace {

/// The lock-time ground-truth key, LSB-first.
[[nodiscard]] sim::BitVector correctKey(const lock::LockEngine& engine, int keyWidth) {
  sim::BitVector key{0, keyWidth};
  for (const auto& record : engine.records()) {
    if (record.keyValue) key.setBit(record.keyIndex, true);
  }
  return key;
}

[[nodiscard]] double corruptionWithFlip(sim::Harness& harness, const sim::BitVector& correct,
                                        int bit, int vectors, int cycles,
                                        std::uint64_t stimulusSeed) {
  sim::BitVector flipped = correct;
  flipped.setBit(bit, !flipped.bit(bit));
  sim::EquivalenceOptions options;
  options.vectors = vectors;
  options.cyclesPerVector = cycles;
  support::Rng rng{stimulusSeed};
  return harness.outputCorruption(flipped, options, rng);
}

TEST(LintDifferentialTest, ConstructedDesignAgreesExactly) {
  // Bit 1 feeds a wire nothing reads (the artificially dead key bit); bit 0
  // guards add-vs-sub on the output.  Static and dynamic verdicts must agree
  // bit for bit.
  rtl::ModuleBuilder b{"deadbit"};
  const auto a = b.input("a", 8);
  const auto c = b.input("b", 8);
  const auto y = b.output("y", 8);
  const auto dead = b.wire("dead", 8);
  b.assign(y, b.mux(rtl::makeKeyRef(0), b.add(b.ref(a), b.ref(c)), b.sub(b.ref(a), b.ref(c))));
  b.assign(dead,
           b.mux(rtl::makeKeyRef(1), b.xorE(b.ref(a), b.ref(c)), b.andE(b.ref(a), b.ref(c))));
  rtl::Module locked = b.take();
  locked.allocateKeyBits(2);

  // The unlocked golden: what the correct key (bit 0 = 1, then-arm) computes.
  rtl::ModuleBuilder g{"deadbit"};
  const auto ga = g.input("a", 8);
  const auto gc = g.input("b", 8);
  const auto gy = g.output("y", 8);
  g.assign(gy, g.add(g.ref(ga), g.ref(gc)));
  const rtl::Module golden = g.take();

  const LintReport report = lintLocked(locked);
  ASSERT_EQ(report.summary.freeKeyBits, 1);
  ASSERT_FALSE(report.bits[1].reachesOutput);

  sim::Harness harness{golden, locked};
  const sim::BitVector correct{1, 2};  // bit 0 = 1 selects the then-arm
  EXPECT_EQ(corruptionWithFlip(harness, correct, 1, 32, 2, 11), 0.0)
      << "flagged bit corrupted an output — the L201 proof is broken";
  EXPECT_GT(corruptionWithFlip(harness, correct, 0, 32, 2, 11), 0.0)
      << "live bit never corrupted — the lock is vacuous";
}

TEST(LintDifferentialTest, RegistrySweepsAgreeAcrossBudgets) {
  const double budgets[] = {0.25, 0.50, 0.75};
  std::uint64_t seed = 1;
  for (const auto& info : designs::allBenchmarks()) {
    const rtl::Module original = info.make();
    for (const double fraction : budgets) {
      rtl::Module locked = original.clone();
      lock::LockEngine engine{locked, lock::PairTable::fixed()};
      support::Rng rng{seed++};
      const int budget =
          std::max(1, static_cast<int>(engine.initialLockableOps() * fraction));
      (void)lock::lockWithAlgorithm(engine, lock::Algorithm::Era, budget, rng);

      const LintReport report = lintLocked(locked);
      const sim::BitVector correct = correctKey(engine, locked.keyWidth());
      sim::Harness harness{original, locked};
      const std::string cell = info.name + " @ " + std::to_string(fraction);

      // Soundness: the correct key reproduces the original bit for bit, and
      // every flagged bit is provably free — zero corruption, full sweep.
      {
        sim::EquivalenceOptions options;
        options.vectors = 32;
        options.cyclesPerVector = 4;
        support::Rng stimulus{11};
        ASSERT_EQ(harness.outputCorruption(correct, options, stimulus), 0.0) << cell;
      }
      for (const KeyBitLint& bit : report.bits) {
        if (bit.reachesOutput) continue;
        EXPECT_EQ(corruptionWithFlip(harness, correct, bit.bit, 64, 4, 11), 0.0)
            << cell << " flagged bit " << bit.bit;
      }

      // Converse witness: some non-flagged bit must demonstrably corrupt.
      // Scan ascending with a cheap sweep first (usually bit 0 suffices),
      // escalating the stimulus depth only when a cell's early bits all
      // guard deep, hard-to-excite cones.
      bool witnessed = false;
      for (const auto& [vectors, cycles] : {std::pair{32, 3}, std::pair{160, 8}}) {
        for (const KeyBitLint& bit : report.bits) {
          if (!bit.reachesOutput) continue;
          if (corruptionWithFlip(harness, correct, bit.bit, vectors, cycles, 11) > 0.0) {
            witnessed = true;
            break;
          }
        }
        if (witnessed) break;
      }
      EXPECT_TRUE(witnessed) << cell << ": no non-flagged bit corrupted at any depth";
    }
  }
}

}  // namespace
}  // namespace rtlock::analysis
