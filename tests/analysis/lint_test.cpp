// Tier B unit suite: the security lint on hand-built shapes with known
// weaknesses, plus key-influence facts the differential suite leans on.
#include "analysis/lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/key_influence.hpp"
#include "core/algorithms.hpp"
#include "designs/registry.hpp"
#include "rtl/builder.hpp"
#include "support/rng.hpp"

namespace rtlock::analysis {
namespace {

[[nodiscard]] int countCheck(const LintReport& report, Check check) {
  return static_cast<int>(std::count_if(report.findings.begin(), report.findings.end(),
                                        [&](const Diagnostic& d) { return d.check == check; }));
}

/// Two key muxes: bit 0 guards the output path, bit 1 guards a wire nothing
/// reads — the canonical artificially-dead key bit.
[[nodiscard]] rtl::Module moduleWithDeadKeyBit() {
  rtl::ModuleBuilder b{"deadbit"};
  const auto a = b.input("a", 8);
  const auto c = b.input("b", 8);
  const auto y = b.output("y", 8);
  const auto dead = b.wire("dead", 8);
  b.assign(y, b.mux(rtl::makeKeyRef(0), b.add(b.ref(a), b.ref(c)), b.sub(b.ref(a), b.ref(c))));
  b.assign(dead, b.mux(rtl::makeKeyRef(1), b.xorE(b.ref(a), b.ref(c)), b.andE(b.ref(a), b.ref(c))));
  rtl::Module m = b.take();
  m.allocateKeyBits(2);
  return m;
}

TEST(KeyInfluenceTest, DeadConeBitDoesNotReachOutput) {
  const rtl::Module m = moduleWithDeadKeyBit();
  const KeyInfluence influence{m};
  ASSERT_EQ(influence.keyWidth(), 2);
  EXPECT_TRUE(influence.reachesOutput(0));
  EXPECT_FALSE(influence.reachesOutput(1));
  EXPECT_EQ(influence.freeBits(), std::vector<int>{1});
  EXPECT_EQ(influence.refCount(0), 1);
  EXPECT_EQ(influence.muxCount(1), 1);
}

TEST(KeyInfluenceTest, InfluenceFlowsThroughRegisters) {
  // key -> comb wire -> register -> output: the fixpoint must cross the
  // sequential boundary, not just the combinational fan-in.
  rtl::ModuleBuilder b{"pipe"};
  const auto clk = b.input("clk", 1);
  const auto a = b.input("a", 8);
  const auto y = b.output("y", 8);
  const auto w = b.wire("w", 8);
  const auto q = b.reg("q", 8);
  b.assign(w, b.mux(rtl::makeKeyRef(0), b.ref(a), b.notE(b.ref(a))));
  b.regAssign(clk, q, b.ref(w));
  b.assign(y, b.ref(q));
  rtl::Module m = b.take();
  m.allocateKeyBits(1);
  EXPECT_TRUE(KeyInfluence{m}.reachesOutput(0));
}

TEST(LintTest, FlagsFreeKeyBitAsL201) {
  const LintReport report = lintLocked(moduleWithDeadKeyBit());
  EXPECT_EQ(report.summary.keyWidth, 2);
  EXPECT_EQ(report.summary.keyMuxes, 2);
  EXPECT_EQ(report.summary.freeKeyBits, 1);
  EXPECT_EQ(countCheck(report, Check::FreeKeyBit), 1);
  ASSERT_EQ(report.bits.size(), 2u);
  EXPECT_TRUE(report.bits[0].reachesOutput);
  EXPECT_FALSE(report.bits[1].reachesOutput);
  EXPECT_DOUBLE_EQ(report.summary.staticResiliencePercent, 50.0);
}

TEST(LintTest, FlagsConstantSelectMuxAsL202) {
  rtl::ModuleBuilder b{"constsel"};
  const auto a = b.input("a", 8);
  const auto y = b.output("y", 8);
  // Select folds through ops: (1 ^ 0) = 1 — then-arm always wins.
  b.assign(y, b.mux(b.xorE(b.lit(1, 1), b.lit(0, 1)), b.ref(a), b.notE(b.ref(a))));
  const LintReport report = lintLocked(b.take());
  EXPECT_EQ(report.summary.constantSelectMuxes, 1);
  EXPECT_EQ(countCheck(report, Check::ConstantSelectMux), 1);
}

TEST(LintTest, FlagsIdenticalArmKeyMuxAsL203) {
  rtl::ModuleBuilder b{"samearms"};
  const auto a = b.input("a", 8);
  const auto c = b.input("b", 8);
  const auto y = b.output("y", 8);
  b.assign(y, b.mux(rtl::makeKeyRef(0), b.add(b.ref(a), b.ref(c)), b.add(b.ref(a), b.ref(c))));
  rtl::Module m = b.take();
  m.allocateKeyBits(1);
  const LintReport report = lintLocked(m);
  EXPECT_EQ(report.summary.identicalArmMuxes, 1);
  EXPECT_EQ(countCheck(report, Check::IdenticalArmsMux), 1);
}

TEST(LintTest, UnlockedModuleYieldsEmptyReport) {
  rtl::ModuleBuilder b{"plain"};
  const auto a = b.input("a", 8);
  const auto y = b.output("y", 8);
  b.assign(y, b.notE(b.ref(a)));
  const LintReport report = lintLocked(b.take());
  EXPECT_EQ(report.summary.keyWidth, 0);
  EXPECT_TRUE(report.findings.empty());
  EXPECT_TRUE(report.bits.empty());
  EXPECT_DOUBLE_EQ(report.summary.staticResiliencePercent, 0.0);
}

TEST(LintTest, ProperlyLockedModuleHasNoRemovableMuxes) {
  // The engine's dummy construction must never degenerate into an L202/L203
  // shape — a removable mux would hand the attacker the key bit for free.
  for (const auto& info : designs::allBenchmarks()) {
    rtl::Module m = info.make();
    lock::LockEngine engine{m, lock::PairTable::fixed()};
    support::Rng rng{3};
    const int budget = std::max(1, engine.initialLockableOps() / 2);
    (void)lock::lockWithAlgorithm(engine, lock::Algorithm::Era, budget, rng);
    const LintReport report = lintLocked(m);
    EXPECT_EQ(report.summary.keyWidth, engine.module().keyWidth());
    EXPECT_EQ(report.summary.constantSelectMuxes, 0) << info.name;
    EXPECT_EQ(report.summary.identicalArmMuxes, 0) << info.name;
    // Pair-based ERA locks can guard both operations of an ODT pair with one
    // shared key bit, so muxes can exceed key bits — never the reverse.
    EXPECT_GE(report.summary.keyMuxes, report.summary.keyWidth) << info.name;
  }
}

}  // namespace
}  // namespace rtlock::analysis
