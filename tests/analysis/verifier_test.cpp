// Tier A regression suite: hand-built malformed modules must produce the
// documented V1xx codes, and everything the generators/engine produce must
// verify clean (the debug-build IR assertions depend on that).
#include "analysis/verifier.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/algorithms.hpp"
#include "designs/random.hpp"
#include "designs/registry.hpp"
#include "rtl/builder.hpp"
#include "support/diagnostics.hpp"
#include "support/rng.hpp"

namespace rtlock::analysis {
namespace {

[[nodiscard]] bool hasCheck(const std::vector<Diagnostic>& findings, Check check) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Diagnostic& d) { return d.check == check; });
}

[[nodiscard]] std::vector<Diagnostic> errorsOnly(std::vector<Diagnostic> findings) {
  std::erase_if(findings, [](const Diagnostic& d) { return d.severity != Severity::Error; });
  return findings;
}

// ---- malformed modules, one expected code each ------------------------------

TEST(VerifierTest, SignalWidthMismatchIsV102) {
  rtl::ModuleBuilder b{"bad"};
  const auto a = b.input("a", 8);
  const auto y = b.output("y", 8);
  // A 4-bit reference to an 8-bit signal: the width lies about the declaration.
  b.assign(y, rtl::makeSignalRef(a, 4));
  const rtl::Module m = b.take();
  EXPECT_TRUE(hasCheck(verify(m), Check::SignalWidthMismatch));
}

TEST(VerifierTest, CombinationalLoopIsV111) {
  rtl::ModuleBuilder b{"loop"};
  const auto a = b.input("a", 8);
  const auto y = b.output("y", 8);
  const auto u = b.wire("u", 8);
  const auto v = b.wire("v", 8);
  b.assign(u, b.add(b.ref(v), b.ref(a)));
  b.assign(v, b.add(b.ref(u), b.lit(1, 8)));
  b.assign(y, b.ref(v));
  const rtl::Module m = b.take();
  const auto findings = verify(m);
  EXPECT_TRUE(hasCheck(findings, Check::CombinationalLoop));
  EXPECT_TRUE(hasErrors(findings));
}

TEST(VerifierTest, UseBeforeDefInCombProcessIsV114) {
  rtl::ModuleBuilder b{"ubd"};
  const auto a = b.input("a", 8);
  const auto y = b.outputReg("y", 8);
  const auto t = b.reg("t", 8);
  // Reads t before the block assigns it: the pre-write read sees stale state.
  std::vector<rtl::StmtPtr> body;
  body.push_back(rtl::makeAssign({y, std::nullopt}, b.add(b.ref(t), b.lit(1, 8)),
                                 /*nonBlocking=*/false));
  body.push_back(rtl::makeAssign({t, std::nullopt}, b.ref(a), /*nonBlocking=*/false));
  b.combProcess(rtl::makeBlock(std::move(body)));
  const rtl::Module m = b.take();
  EXPECT_TRUE(hasCheck(verify(m), Check::UseBeforeDef));
}

TEST(VerifierTest, KeyPortNameCollisionIsV110) {
  // addSignal itself rejects a declaration matching the current key port, so
  // the collision must arrive the other way round: renaming the key port
  // onto an existing signal after the fact.
  rtl::ModuleBuilder b{"collide"};
  const auto k = b.input("k", 2);
  const auto y = b.output("y", 2);
  b.assign(y, b.mux(rtl::makeKeyRef(0), b.ref(k), b.notE(b.ref(k))));
  rtl::Module m = b.take();
  m.allocateKeyBits(1);
  m.setKeyPortName("k");
  EXPECT_TRUE(hasCheck(verify(m), Check::NameCollision));
}

TEST(VerifierTest, DrivenInputIsV107) {
  rtl::ModuleBuilder b{"badin"};
  const auto a = b.input("a", 8);
  const auto y = b.output("y", 8);
  b.assign(a, b.lit(0, 8));
  b.assign(y, b.ref(a));
  const rtl::Module m = b.take();
  EXPECT_TRUE(hasCheck(verify(m), Check::DrivenInput));
}

TEST(VerifierTest, MultipleContDriversIsV112) {
  rtl::ModuleBuilder b{"multi"};
  const auto a = b.input("a", 8);
  const auto y = b.output("y", 8);
  b.assign(y, b.ref(a));
  b.assign(y, b.notE(b.ref(a)));
  const rtl::Module m = b.take();
  EXPECT_TRUE(hasCheck(verify(m), Check::MultipleDrivers));
}

TEST(VerifierTest, KeyRefBeyondKeyWidthIsV105) {
  rtl::ModuleBuilder b{"badkey"};
  const auto a = b.input("a", 8);
  const auto y = b.output("y", 8);
  b.assign(y, b.mux(rtl::makeKeyRef(3), b.ref(a), b.notE(b.ref(a))));
  rtl::Module m = b.take();
  m.allocateKeyBits(1);  // K[3] read, key width only 1
  EXPECT_TRUE(hasCheck(verify(m), Check::KeyRefOutOfRange));
}

TEST(VerifierTest, DanglingKeyBitIsV106Warning) {
  rtl::ModuleBuilder b{"dangling"};
  const auto a = b.input("a", 8);
  const auto y = b.output("y", 8);
  b.assign(y, b.mux(rtl::makeKeyRef(0), b.ref(a), b.notE(b.ref(a))));
  rtl::Module m = b.take();
  m.allocateKeyBits(3);  // bits 1..2 never referenced
  const auto findings = verify(m);
  EXPECT_TRUE(hasCheck(findings, Check::DanglingKeyBit));
  EXPECT_FALSE(hasErrors(findings));  // a warning, not an error
}

TEST(VerifierTest, UndrivenOutputIsV113Warning) {
  rtl::ModuleBuilder b{"undriven"};
  (void)b.input("a", 8);
  (void)b.output("y", 8);
  const rtl::Module m = b.take();
  const auto findings = verify(m);
  EXPECT_TRUE(hasCheck(findings, Check::UndrivenSignal));
  EXPECT_FALSE(hasErrors(findings));
}

TEST(VerifierTest, VerifyOrThrowRaisesOnErrors) {
  rtl::ModuleBuilder b{"bad"};
  const auto a = b.input("a", 8);
  b.assign(a, b.lit(0, 8));
  const rtl::Module m = b.take();
  EXPECT_THROW(verifyOrThrow(m, "in a test"), support::ContractViolation);
  EXPECT_THROW(requireVerified(m, "test"), support::Error);
}

// ---- the whole corpus verifies clean ---------------------------------------

TEST(VerifierTest, RegistryDesignsVerifyClean) {
  for (const auto& info : designs::allBenchmarks()) {
    const rtl::Module m = info.make();
    const auto findings = verify(m);
    EXPECT_TRUE(findings.empty()) << info.name << ":\n" << describeAll(findings);
  }
}

TEST(VerifierTest, LockedRegistryDesignsVerifyClean) {
  for (const auto& info : designs::allBenchmarks()) {
    rtl::Module m = info.make();
    lock::LockEngine engine{m, lock::PairTable::fixed()};
    support::Rng rng{7};
    const int budget = std::max(1, engine.initialLockableOps() / 2);
    (void)lock::lockWithAlgorithm(engine, lock::Algorithm::Era, budget, rng);
    const auto findings = verify(m);
    EXPECT_TRUE(findings.empty()) << info.name << " locked:\n" << describeAll(findings);
  }
}

TEST(VerifierTest, FuzzedLockUndoInterleavingsVerifyClean) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    support::Rng rng{seed};
    rtl::Module m = designs::makeRandomModule(rng);
    ASSERT_TRUE(errorsOnly(verify(m)).empty()) << "generator seed " << seed;

    lock::LockEngine engine{m, lock::PairTable::fixed()};
    // Interleave partial locks with partial undos; the IR must stay clean at
    // every rest point, and a full unwind must land back on a clean module.
    for (int round = 0; round < 4; ++round) {
      const std::size_t mark = engine.checkpoint();
      for (int i = 0; i < 3; ++i) (void)engine.lockRandomOp(rng);
      ASSERT_TRUE(errorsOnly(verify(m)).empty())
          << "seed " << seed << " round " << round << " after lock";
      if (round % 2 == 1) engine.undoTo(mark);
      ASSERT_TRUE(errorsOnly(verify(m)).empty())
          << "seed " << seed << " round " << round << " after undo";
    }
    engine.undoAll();
    ASSERT_TRUE(errorsOnly(verify(m)).empty()) << "seed " << seed << " after undoAll";
  }
}

}  // namespace
}  // namespace rtlock::analysis
