#include "attack/pipeline.hpp"

#include <gtest/gtest.h>

#include "designs/networks.hpp"

namespace rtlock::attack {
namespace {

EvaluationConfig fastEvaluation() {
  EvaluationConfig config;
  config.testLocks = 2;
  config.snapshot.relockRounds = 25;
  config.snapshot.automl.folds = 2;
  return config;
}

TEST(PipelineTest, AggregatesKpaOverSamples) {
  support::Rng rng{1};
  const auto original = designs::makePlusNetwork(60);
  const auto result = evaluateBenchmark(original, "plus60", lock::Algorithm::AssureSerial,
                                        lock::PairTable::fixed(), fastEvaluation(), rng);
  EXPECT_EQ(result.samples, 2);
  EXPECT_EQ(result.benchmark, "plus60");
  EXPECT_GE(result.maxKpa, result.meanKpa);
  EXPECT_LE(result.minKpa, result.meanKpa);
  EXPECT_GT(result.meanKpa, 80.0);  // imbalanced network breaks easily
  EXPECT_NEAR(result.meanKeyBits, 45.0, 1e-9);
  EXPECT_NEAR(result.meanBitsUsed, 45.0, 1e-9);
}

TEST(PipelineTest, EraShowsResilienceAndExceedsBudget) {
  support::Rng rng{2};
  const auto original = designs::makePlusNetwork(60);
  const auto result = evaluateBenchmark(original, "plus60", lock::Algorithm::Era,
                                        lock::PairTable::fixed(), fastEvaluation(), rng);
  // Full imbalance: ERA needs 100 % (60 bits) despite the 75 % budget.
  EXPECT_GE(result.meanBitsUsed, 60.0);
  EXPECT_LT(result.meanKpa, 65.0);
  EXPECT_DOUBLE_EQ(result.meanRestrictedMetric, 100.0);
}

TEST(PipelineTest, VerifyFunctionalPassesAndChangesNoOutputBit) {
  // Locked samples must behave like the original under their correct key on
  // both simulator backends; enabling the check must not perturb any KPA or
  // metric bit (it draws from an independent fixed-seed stimulus stream).
  const auto original = designs::makePlusNetwork(40);
  support::Rng plainRng{7};
  const auto plain = evaluateBenchmark(original, "plus40", lock::Algorithm::AssureSerial,
                                       lock::PairTable::fixed(), fastEvaluation(), plainRng);
  for (const sim::SimBackend backend : {sim::SimBackend::Sliced, sim::SimBackend::Compiled}) {
    EvaluationConfig config = fastEvaluation();
    config.verifyFunctional = true;
    config.simBackend = backend;
    support::Rng rng{7};
    const auto verified = evaluateBenchmark(original, "plus40", lock::Algorithm::AssureSerial,
                                            lock::PairTable::fixed(), config, rng);
    EXPECT_EQ(verified.functionalFailures, 0);
    EXPECT_DOUBLE_EQ(verified.meanKpa, plain.meanKpa);
    EXPECT_DOUBLE_EQ(verified.meanGlobalMetric, plain.meanGlobalMetric);
    EXPECT_DOUBLE_EQ(verified.meanRestrictedMetric, plain.meanRestrictedMetric);
  }
  EXPECT_EQ(plain.functionalFailures, 0);  // off by default: counter stays 0
}

TEST(PipelineTest, OriginalModuleLeftUntouched) {
  support::Rng rng{3};
  const auto original = designs::makePlusNetwork(30);
  const rtl::Module reference = original.clone();
  (void)evaluateBenchmark(original, "plus30", lock::Algorithm::Hra, lock::PairTable::fixed(),
                          fastEvaluation(), rng);
  EXPECT_TRUE(structurallyEqual(original, reference));
}

}  // namespace
}  // namespace rtlock::attack
