// Attack-level sanity: the SnapShot pipeline must (a) break fully imbalanced
// ASSURE-locked designs, (b) fail against ERA's balanced designs, and (c)
// leave the target structurally intact.
#include "attack/snapshot.hpp"

#include <gtest/gtest.h>

#include "designs/networks.hpp"

namespace rtlock::attack {
namespace {

using rtl::OpKind;

SnapshotConfig fastConfig() {
  SnapshotConfig config;
  config.relockRounds = 40;
  config.automl.folds = 2;
  return config;
}

struct LockedSample {
  rtl::Module module;
  std::vector<lock::LockRecord> records;
};

LockedSample lockWith(lock::Algorithm algorithm, rtl::Module module, double budgetFraction,
                      std::uint64_t seed) {
  support::Rng rng{seed};
  lock::LockEngine engine{module, lock::PairTable::fixed()};
  const int budget = std::max(
      1, static_cast<int>(budgetFraction * static_cast<double>(engine.initialLockableOps())));
  (void)lock::lockWithAlgorithm(engine, algorithm, budget, rng);
  return LockedSample{std::move(module), engine.records()};
}

TEST(SnapshotTest, BreaksImbalancedAssureLocking) {
  // Pure '+' network locked by ASSURE: every locality carries the key (the
  // N_2046 mechanism).  KPA should approach 100 %.
  auto sample = lockWith(lock::Algorithm::AssureSerial, designs::makePlusNetwork(80), 0.75, 1);
  support::Rng rng{2};
  const auto result =
      snapshotAttack(sample.module, sample.records, lock::PairTable::fixed(), fastConfig(), rng);
  EXPECT_GT(result.kpa, 90.0);
  EXPECT_EQ(result.keyBits, 60);
}

TEST(SnapshotTest, ChanceAgainstEraLocking) {
  auto sample = lockWith(lock::Algorithm::Era, designs::makePlusNetwork(80), 0.75, 3);
  support::Rng rng{4};
  const auto result =
      snapshotAttack(sample.module, sample.records, lock::PairTable::fixed(), fastConfig(), rng);
  EXPECT_LT(result.kpa, 65.0);
  EXPECT_GT(result.kpa, 35.0);
}

TEST(SnapshotTest, TargetRestoredAfterAttack) {
  auto sample = lockWith(lock::Algorithm::AssureRandom, designs::makePlusNetwork(40), 0.5, 5);
  const rtl::Module reference = sample.module.clone();
  support::Rng rng{6};
  (void)snapshotAttack(sample.module, sample.records, lock::PairTable::fixed(), fastConfig(),
                       rng);
  EXPECT_TRUE(structurallyEqual(sample.module, reference));
}

TEST(SnapshotTest, ReportsTrainingVolumeAndModel) {
  auto sample = lockWith(lock::Algorithm::AssureRandom, designs::makePlusNetwork(40), 0.5, 7);
  support::Rng rng{8};
  const auto config = fastConfig();
  const auto result =
      snapshotAttack(sample.module, sample.records, lock::PairTable::fixed(), config, rng);
  EXPECT_FALSE(result.modelName.empty());
  EXPECT_GT(result.trainingRows, static_cast<std::size_t>(config.relockRounds));
  EXPECT_EQ(result.predictions.size(), sample.records.size());
}

TEST(SnapshotTest, BalancedDesignResistsEvenAssure) {
  // N_1023-style balanced design: ASSURE leaves the pair balanced only if
  // locking preserves symmetry; with 50 % budget the distribution stays
  // near-balanced and KPA stays well below the imbalanced case.
  auto sample = lockWith(
      lock::Algorithm::AssureRandom,
      designs::makeOperationNetwork("bal", {{OpKind::Add, 40}, {OpKind::Sub, 40}}), 0.5, 9);
  support::Rng rng{10};
  const auto result =
      snapshotAttack(sample.module, sample.records, lock::PairTable::fixed(), fastConfig(), rng);
  EXPECT_LT(result.kpa, 70.0);
}

TEST(SnapshotTest, KpaConsistentWithCounts) {
  auto sample = lockWith(lock::Algorithm::AssureSerial, designs::makePlusNetwork(30), 0.5, 11);
  support::Rng rng{12};
  const auto result =
      snapshotAttack(sample.module, sample.records, lock::PairTable::fixed(), fastConfig(), rng);
  EXPECT_NEAR(result.kpa, 100.0 * result.correct / result.keyBits, 1e-9);
  EXPECT_LE(result.correct, result.keyBits);
}

}  // namespace
}  // namespace rtlock::attack
