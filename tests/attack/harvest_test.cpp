// Differential suite for incremental locality harvesting: the harvester's
// output must match the full-walk extractor (the retained oracle) on every
// registry design, at several relock budgets, for both feature sets.
#include "attack/harvest.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/algorithms.hpp"
#include "designs/networks.hpp"
#include "designs/registry.hpp"
#include "ml/dataset.hpp"

namespace rtlock::attack {
namespace {

using rtl::OpKind;

/// (keyIndex, features) tuples as a sortable value for multiset comparison.
std::multiset<std::pair<int, ml::FeatureRow>> asMultiset(const std::vector<Locality>& rows) {
  std::multiset<std::pair<int, ml::FeatureRow>> result;
  for (const Locality& locality : rows) result.emplace(locality.keyIndex, locality.features);
  return result;
}

void expectExactMatch(const std::vector<Locality>& harvested,
                      const std::vector<Locality>& extracted, const std::string& context) {
  ASSERT_EQ(harvested.size(), extracted.size()) << context;
  for (std::size_t i = 0; i < harvested.size(); ++i) {
    EXPECT_EQ(harvested[i].keyIndex, extracted[i].keyIndex) << context << " row " << i;
    EXPECT_EQ(harvested[i].features, extracted[i].features) << context << " row " << i;
  }
}

/// Runs target lock + several relock rounds on one design and compares the
/// harvester against the extractor each round.
void runDifferential(const std::string& benchmark, double budgetFraction,
                     const LocalityConfig& config, std::uint64_t seed) {
  rtl::Module module = designs::makeBenchmark(benchmark);
  lock::LockEngine engine{module, lock::PairTable::fixed()};
  support::Rng rng{seed};
  const int targetBudget =
      std::max(1, static_cast<int>(budgetFraction * engine.initialLockableOps()));
  lock::assureRandomLock(engine, targetBudget, rng);

  LocalityHarvester harvester{engine, config};
  for (int round = 0; round < 3; ++round) {
    const std::size_t checkpoint = engine.checkpoint();
    const int keyStart = module.keyWidth();
    const int budget = std::max(1, static_cast<int>(budgetFraction * engine.totalLockableOps()));
    harvester.beginRound();
    lock::assureRandomLock(engine, budget, rng);

    const std::vector<Locality> harvested = harvester.harvest();
    const std::vector<Locality> extracted = extractLocalities(module, config, keyStart);
    const std::string context = benchmark + " round " + std::to_string(round);
    if (harvester.roundHasClonedKeyMuxes()) {
      // Duplicate key indices: relative tie order is implementation-defined
      // in the extractor, so compare as multisets; harvestInto() covers the
      // exact-order contract by delegating to the extractor on such rounds.
      EXPECT_EQ(asMultiset(harvested), asMultiset(extracted)) << context;
    } else {
      expectExactMatch(harvested, extracted, context);
    }

    // The training-row path must match the legacy extractor-based pipeline
    // row for row, labels included, on every round.
    ml::Dataset viaHarvester{featureCount(config)};
    harvester.harvestInto(viaHarvester);
    ml::Dataset viaExtractor{featureCount(config)};
    const auto& records = engine.records();
    for (const Locality& locality : extracted) {
      const lock::LockRecord& record =
          records[checkpoint + static_cast<std::size_t>(locality.keyIndex - keyStart)];
      ASSERT_EQ(record.keyIndex, locality.keyIndex);
      viaExtractor.add(locality.features, record.keyValue ? 1 : 0);
    }
    ASSERT_EQ(viaHarvester.size(), viaExtractor.size()) << context;
    for (std::size_t i = 0; i < viaHarvester.size(); ++i) {
      EXPECT_TRUE(std::ranges::equal(viaHarvester.row(i), viaExtractor.row(i)))
          << context << " row " << i;
      EXPECT_EQ(viaHarvester.label(i), viaExtractor.label(i)) << context << " row " << i;
    }

    engine.undoTo(checkpoint);
  }
}

TEST(HarvestTest, MatchesExtractorOnEveryRegistryDesignBasicFeatures) {
  std::uint64_t seed = 1;
  for (const std::string& name : designs::benchmarkNames()) {
    for (const double budget : {0.25, 0.75}) {
      runDifferential(name, budget, LocalityConfig{}, seed++);
    }
  }
}

TEST(HarvestTest, MatchesExtractorOnEveryRegistryDesignExtendedFeatures) {
  LocalityConfig config;
  config.extendedFeatures = true;
  std::uint64_t seed = 100;
  for (const std::string& name : designs::benchmarkNames()) {
    runDifferential(name, 0.75, config, seed++);
  }
}

TEST(HarvestTest, NestedRelockWithinRoundYieldsMuxCodes) {
  // Relocking the same pool position twice nests muxes (Fig. 3b); the
  // harvester computes features at harvest time, so the outer mux must show
  // the nested kMuxCode exactly like the full walk.
  rtl::Module module = designs::makePlusNetwork(4);
  lock::LockEngine engine{module, lock::PairTable::fixed()};
  LocalityHarvester harvester{engine, {}};
  harvester.beginRound();
  engine.lockOpAt(OpKind::Add, 0, true);
  engine.lockOpAt(OpKind::Add, 0, true);
  const auto harvested = harvester.harvest();
  const auto extracted = extractLocalities(module, {}, 0);
  expectExactMatch(harvested, extracted, "nested");
  ASSERT_EQ(harvested.size(), 2u);
  EXPECT_EQ(harvested[0].features[0], kMuxCode);
}

TEST(HarvestTest, UndoWithinRoundDropsHarvestedEntries) {
  rtl::Module module = designs::makePlusNetwork(8);
  lock::LockEngine engine{module, lock::PairTable::fixed()};
  LocalityHarvester harvester{engine, {}};
  harvester.beginRound();
  engine.lockOpAt(OpKind::Add, 0, true);
  const std::size_t mid = engine.checkpoint();
  engine.lockOpAt(OpKind::Add, 1, false);
  engine.lockOpAt(OpKind::Add, 2, true);
  engine.undoTo(mid);
  const auto harvested = harvester.harvest();
  const auto extracted = extractLocalities(module, {}, 0);
  expectExactMatch(harvested, extracted, "undo");
  ASSERT_EQ(harvested.size(), 1u);
  EXPECT_EQ(harvested[0].keyIndex, 0);
}

TEST(HarvestTest, UndoOfPreRoundLocksIsIgnored) {
  rtl::Module module = designs::makePlusNetwork(8);
  lock::LockEngine engine{module, lock::PairTable::fixed()};
  engine.lockOpAt(OpKind::Add, 0, true);  // before the harvester's round
  LocalityHarvester harvester{engine, {}};
  harvester.beginRound();
  engine.lockOpAt(OpKind::Add, 1, false);
  engine.undoAll();  // undoes the round lock, then the pre-round lock
  EXPECT_TRUE(harvester.harvest().empty());
}

TEST(HarvestTest, SecondObserverOnOneEngineIsRejected) {
  rtl::Module module = designs::makePlusNetwork(4);
  lock::LockEngine engine{module, lock::PairTable::fixed()};
  LocalityHarvester first{engine, {}};
  EXPECT_THROW((LocalityHarvester{engine, {}}), support::ContractViolation);
}

TEST(HarvestTest, DestructorDetachesObserver) {
  rtl::Module module = designs::makePlusNetwork(4);
  lock::LockEngine engine{module, lock::PairTable::fixed()};
  {
    LocalityHarvester harvester{engine, {}};
    EXPECT_EQ(engine.observer(), &harvester);
  }
  EXPECT_EQ(engine.observer(), nullptr);
  // Locks after detach must not touch the destroyed harvester.
  engine.lockOpAt(OpKind::Add, 0, true);
  EXPECT_EQ(module.keyWidth(), 1);
}

TEST(HarvestTest, CloneRoundsAreDetectedAndMatchLegacyRows) {
  // SASC's operand structure clones key muxes into dummy branches, the case
  // that forces the extractor fallback.  At least one round must detect
  // clones, and the runDifferential checks above already pinned row
  // equality; here we pin the detection itself.
  rtl::Module module = designs::makeBenchmark("SASC");
  lock::LockEngine engine{module, lock::PairTable::fixed()};
  support::Rng rng{7};
  lock::assureRandomLock(
      engine, std::max(1, static_cast<int>(0.75 * engine.initialLockableOps())), rng);
  LocalityHarvester harvester{engine, {}};
  harvester.beginRound();
  lock::assureRandomLock(
      engine, std::max(1, static_cast<int>(0.75 * engine.totalLockableOps())), rng);
  EXPECT_TRUE(harvester.roundHasClonedKeyMuxes());
}

}  // namespace
}  // namespace rtlock::attack
