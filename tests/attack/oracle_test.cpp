#include "attack/oracle.hpp"

#include <gtest/gtest.h>

#include "core/algorithms.hpp"
#include "designs/dsp.hpp"
#include "designs/networks.hpp"

namespace rtlock::attack {
namespace {

using rtl::OpKind;

OracleAttackConfig fastConfig() {
  OracleAttackConfig config;
  config.trials = 6;
  config.restarts = 3;
  config.vectors = 6;
  config.cyclesPerVector = 6;
  return config;
}

TEST(OracleTest, RecoversKeyOfCombinationalMulDesign) {
  // Smooth corruption gradient: mul/div mismatches are large and monotone.
  rtl::Module original = designs::makeOperationNetwork(
      "probe", {{OpKind::Mul, 8}, {OpKind::Add, 8}}, 16);
  rtl::Module locked = original.clone();
  support::Rng rng{1};
  lock::LockEngine engine{locked, lock::PairTable::fixed()};
  lock::assureRandomLock(engine, 8, rng);

  const auto result = oracleGuidedAttack(original, locked, engine.records(), fastConfig(), rng);
  EXPECT_EQ(result.keyBits, 8);
  EXPECT_GT(result.kpa, 85.0);
}

TEST(OracleTest, BreaksEraDespiteLearningResilience) {
  // The headline of the extension: ERA balances the distribution (SnapShot
  // at ~50 %), yet the oracle attack still recovers the key on designs with
  // a smooth corruption gradient.
  rtl::Module original = designs::makeOperationNetwork(
      "era_probe", {{OpKind::Mul, 10}, {OpKind::Add, 6}}, 16);
  rtl::Module locked = original.clone();
  support::Rng rng{2};
  lock::LockEngine engine{locked, lock::PairTable::fixed()};
  lock::eraLock(engine, engine.initialLockableOps(), rng);

  OracleAttackConfig config = fastConfig();
  config.restarts = 5;
  config.vectors = 8;
  const auto result = oracleGuidedAttack(original, locked, engine.records(), config, rng);
  // Bits locking never-selected dummy branches are functionally unobservable
  // (any oracle is blind to them), so the ceiling sits below 100 %; clearly
  // above random is the property that matters.
  EXPECT_GT(result.kpa, 60.0);
}

TEST(OracleTest, PredictionsAlignedWithTruth) {
  rtl::Module original = designs::makeOperationNetwork("p", {{OpKind::Add, 6}}, 16);
  rtl::Module locked = original.clone();
  support::Rng rng{3};
  lock::LockEngine engine{locked, lock::PairTable::fixed()};
  lock::assureRandomLock(engine, 4, rng);

  const auto result = oracleGuidedAttack(original, locked, engine.records(), fastConfig(), rng);
  ASSERT_EQ(result.predictions.size(), engine.records().size());
  int correct = 0;
  for (std::size_t i = 0; i < result.predictions.size(); ++i) {
    if (result.predictions[i] == (engine.records()[i].keyValue ? 1 : 0)) ++correct;
  }
  EXPECT_EQ(correct, result.correct);
  EXPECT_NEAR(result.kpa, 100.0 * correct / result.keyBits, 1e-9);
}

TEST(OracleTest, UnlockedDesignRejected) {
  rtl::Module original = designs::makeOperationNetwork("p", {{OpKind::Add, 4}}, 8);
  rtl::Module clone = original.clone();
  support::Rng rng{4};
  EXPECT_THROW((void)oracleGuidedAttack(original, clone, {}, fastConfig(), rng),
               support::ContractViolation);
}

TEST(OracleTest, DeterministicGivenSeed) {
  rtl::Module original = designs::makeOperationNetwork("p", {{OpKind::Add, 10}}, 16);
  rtl::Module locked = original.clone();
  support::Rng lockRng{5};
  lock::LockEngine engine{locked, lock::PairTable::fixed()};
  lock::assureRandomLock(engine, 6, lockRng);

  support::Rng rngA{6};
  support::Rng rngB{6};
  const auto a = oracleGuidedAttack(original, locked, engine.records(), fastConfig(), rngA);
  const auto b = oracleGuidedAttack(original, locked, engine.records(), fastConfig(), rngB);
  EXPECT_EQ(a.predictions, b.predictions);
  EXPECT_DOUBLE_EQ(a.kpa, b.kpa);
}

}  // namespace
}  // namespace rtlock::attack
