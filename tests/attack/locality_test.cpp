#include "attack/locality.hpp"

#include <gtest/gtest.h>

#include "core/assure.hpp"
#include "designs/networks.hpp"
#include "rtl/builder.hpp"

namespace rtlock::attack {
namespace {

using rtl::OpKind;

TEST(LocalityTest, UnlockedModuleHasNoLocalities) {
  const rtl::Module m = designs::makePlusNetwork(5);
  EXPECT_TRUE(extractLocalities(m, {}).empty());
}

TEST(LocalityTest, BasicEncodingIsOperationPair) {
  rtl::ModuleBuilder b{"one"};
  const auto a = b.input("a", 8);
  const auto y = b.output("y", 8);
  b.assign(y, b.mux(rtl::makeKeyRef(0), b.add(b.ref(a), b.lit(1, 8)),
                    b.sub(b.ref(a), b.lit(1, 8))));
  rtl::Module m = b.take();
  m.allocateKeyBits(1);

  const auto localities = extractLocalities(m, {});
  ASSERT_EQ(localities.size(), 1u);
  EXPECT_EQ(localities[0].keyIndex, 0);
  ASSERT_EQ(localities[0].features.size(), 2u);
  EXPECT_EQ(localities[0].features[0], 1 + static_cast<int>(OpKind::Add));
  EXPECT_EQ(localities[0].features[1], 1 + static_cast<int>(OpKind::Sub));
}

TEST(LocalityTest, KeyValueDeterminesBranchOrder) {
  // Locked with key 1 -> (real, dummy); key 0 -> (dummy, real).  The pair of
  // feature vectors must be mirrored.
  rtl::Module m = designs::makePlusNetwork(4);
  lock::LockEngine engine{m, lock::PairTable::fixed()};
  engine.lockOpAt(OpKind::Add, 0, true);
  engine.lockOpAt(OpKind::Add, 1, false);
  const auto localities = extractLocalities(m, {});
  ASSERT_EQ(localities.size(), 2u);
  EXPECT_EQ(localities[0].features[0], localities[1].features[1]);
  EXPECT_EQ(localities[0].features[1], localities[1].features[0]);
}

TEST(LocalityTest, NestedRelockProducesMuxCode) {
  rtl::Module m = designs::makePlusNetwork(4);
  lock::LockEngine engine{m, lock::PairTable::fixed()};
  engine.lockOpAt(OpKind::Add, 0, true);
  engine.lockOpAt(OpKind::Add, 0, true);  // relock the same op (Fig. 3b)
  const auto localities = extractLocalities(m, {});
  ASSERT_EQ(localities.size(), 2u);
  // The outer mux (key 0) now has a mux as its real branch.
  EXPECT_EQ(localities[0].features[0], kMuxCode);
}

TEST(LocalityTest, MinKeyIndexFiltersTargetBits) {
  rtl::Module m = designs::makePlusNetwork(6);
  lock::LockEngine engine{m, lock::PairTable::fixed()};
  support::Rng rng{1};
  lock::assureRandomLock(engine, 3, rng);  // target bits 0..2
  lock::assureRandomLock(engine, 2, rng);  // training bits 3..4
  EXPECT_EQ(extractLocalities(m, {}).size(), 5u);
  const auto trainingOnly = extractLocalities(m, {}, 3);
  ASSERT_EQ(trainingOnly.size(), 2u);
  EXPECT_EQ(trainingOnly[0].keyIndex, 3);
  EXPECT_EQ(trainingOnly[1].keyIndex, 4);
}

TEST(LocalityTest, ExtendedFeaturesHaveSixColumns) {
  rtl::Module m = designs::makePlusNetwork(4);
  lock::LockEngine engine{m, lock::PairTable::fixed()};
  engine.lockOpAt(OpKind::Add, 0, true);
  LocalityConfig config;
  config.extendedFeatures = true;
  EXPECT_EQ(featureCount(config), 6);
  const auto localities = extractLocalities(m, config);
  ASSERT_EQ(localities.size(), 1u);
  EXPECT_EQ(localities[0].features.size(), 6u);
  // Depths of the plain add/sub branches are 2 (op + leaf refs).
  EXPECT_EQ(localities[0].features[2], 2.0);
  EXPECT_EQ(localities[0].features[3], 2.0);
}

TEST(LocalityTest, DesignTernariesAreNotKeyMuxes) {
  rtl::ModuleBuilder b{"sel"};
  const auto s = b.input("s", 1);
  const auto a = b.input("a", 8);
  const auto y = b.output("y", 8);
  b.assign(y, b.mux(b.ref(s), b.ref(a), b.lit(0, 8)));
  const rtl::Module m = b.take();
  EXPECT_TRUE(extractLocalities(m, {}).empty());
}

TEST(LocalityTest, LocalitiesInsideProcesses) {
  rtl::ModuleBuilder b{"seq"};
  const auto clk = b.input("clk", 1);
  const auto d = b.input("d", 8);
  const auto q = b.reg("q", 8);
  const auto y = b.output("y", 8);
  b.regAssign(clk, q, b.add(b.ref(q), b.ref(d)));
  b.assign(y, b.ref(q));
  rtl::Module m = b.take();
  lock::LockEngine engine{m, lock::PairTable::fixed()};
  engine.lockOpAt(OpKind::Add, 0, true);
  EXPECT_EQ(extractLocalities(m, {}).size(), 1u);
}

TEST(LocalityTest, DeepExpressionChainsDoNotOverflowTheStack) {
  // The collector walks with an explicit work list, so extraction depth is
  // bounded by heap, not stack.  The chain is dismantled iteratively at the
  // end because ~Expr recursion is the remaining depth limit elsewhere.
  constexpr int kDepth = 100000;
  rtl::ModuleBuilder b{"deep"};
  const auto a = b.input("a", 8);
  const auto y = b.output("y", 8);
  rtl::ExprPtr chain = rtl::makeTernary(rtl::makeKeyRef(0), b.add(b.ref(a), b.lit(1, 8)),
                                        b.sub(b.ref(a), b.lit(1, 8)));
  for (int i = 0; i < kDepth; ++i) {
    chain = rtl::makeBinary(OpKind::Add, std::move(chain), b.lit(1, 8));
  }
  b.assign(y, std::move(chain));
  rtl::Module m = b.take();
  m.allocateKeyBits(1);

  const auto localities = extractLocalities(m, {});
  ASSERT_EQ(localities.size(), 1u);
  EXPECT_EQ(localities[0].keyIndex, 0);
  EXPECT_EQ(localities[0].features[0], 1 + static_cast<int>(OpKind::Add));

  // Iterative teardown: move every child out breadth-first, then destroy the
  // flat node list (each node's children are already detached).
  std::vector<rtl::ExprPtr> flat;
  for (auto& assign : m.contAssigns()) {
    flat.push_back(std::move(assign->exprSlotAt(rtl::ContAssign::kValueSlot)));
  }
  for (std::size_t i = 0; i < flat.size(); ++i) {
    for (int slot = 0; slot < flat[i]->exprSlotCount(); ++slot) {
      if (flat[i]->exprSlotAt(slot) != nullptr) {
        flat.push_back(std::move(flat[i]->exprSlotAt(slot)));
      }
    }
  }
}

TEST(LocalityTest, SortedByKeyIndex) {
  rtl::Module m = designs::makePlusNetwork(10);
  lock::LockEngine engine{m, lock::PairTable::fixed()};
  support::Rng rng{2};
  lock::assureRandomLock(engine, 8, rng);
  const auto localities = extractLocalities(m, {});
  for (std::size_t i = 1; i < localities.size(); ++i) {
    EXPECT_LT(localities[i - 1].keyIndex, localities[i].keyIndex);
  }
}

}  // namespace
}  // namespace rtlock::attack
