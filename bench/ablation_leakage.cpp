// Sec. 3.2 — ASSURE pair-table leakage ablation.
//
// "ASSURE assumes these pairs: (*, +), (+, -), (-, +). [...] if the locked
// pair (*, +) is encountered, the attacker can infer * as the correct
// operation [...] currently ASSURE can be broken by analyzing operation
// pairs."
//
// The bench locks an operator-rich design with (a) the original leaky table
// and (b) the fixed involutive table, attacks both, and reports KPA per real
// operation kind.  Expected: near-100 % KPA on the asymmetric kinds (mul,
// div, mod, pow, xor) under the original table; markedly lower under the fix.
#include <iostream>
#include <map>

#include "attack/snapshot.hpp"
#include "common.hpp"
#include "core/algorithms.hpp"
#include "designs/networks.hpp"

namespace {

using namespace rtlock;

// Balanced per fixed pair so that under the involutive table no distribution
// signal exists (KPA ~50 everywhere) — any KPA gained under the original
// table is pure pair-asymmetry leakage, isolating the Sec. 3.2 effect.
rtl::Module operatorRichDesign() {
  using rtl::OpKind;
  return designs::makeOperationNetwork("leakage_probe",
                                       {{OpKind::Add, 18},
                                        {OpKind::Sub, 18},
                                        {OpKind::Mul, 10},
                                        {OpKind::Div, 10},
                                        {OpKind::Mod, 6},
                                        {OpKind::Pow, 6},
                                        {OpKind::Xor, 12},
                                        {OpKind::Xnor, 12},
                                        {OpKind::And, 10},
                                        {OpKind::Or, 10},
                                        {OpKind::Shl, 8},
                                        {OpKind::Shr, 8}});
}

struct PerKind {
  int correct = 0;
  int total = 0;
};

std::map<rtl::OpKind, PerKind> attackAndScore(const lock::PairTable& table, int samples,
                                              int relocks, support::Rng& rng) {
  std::map<rtl::OpKind, PerKind> scores;
  for (int sample = 0; sample < samples; ++sample) {
    rtl::Module locked = operatorRichDesign();
    lock::LockEngine engine{locked, table};
    const int budget = static_cast<int>(0.75 * engine.initialLockableOps());
    lock::assureRandomLock(engine, budget, rng);
    const auto truth = engine.records();

    attack::SnapshotConfig config;
    config.relockRounds = relocks;
    config.automl.folds = 3;
    const auto result = attack::snapshotAttack(locked, truth, table, config, rng);

    for (std::size_t i = 0; i < truth.size(); ++i) {
      auto& entry = scores[truth[i].realOp];
      ++entry.total;
      if (result.predictions[i] == (truth[i].keyValue ? 1 : 0)) ++entry.correct;
    }
  }
  return scores;
}

}  // namespace

int main(int argc, char** argv) {
  return rtlock::bench::runBench([&] {
    const support::CliArgs args(argc, argv, {"seed", "csv", "samples", "relocks", "threads"});
    const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
    const bool csv = args.getBool("csv", false);
    const int samples = static_cast<int>(args.getInt("samples", 3));
    const int relocks = static_cast<int>(args.getInt("relocks", 80));
    const int threads = rtlock::bench::requestedThreads(args);

    rtlock::bench::banner(
        "Sec. 3.2 — pair-table leakage (original ASSURE vs. involutive fix)",
        "Sisejkovic et al., DAC'22, Sec. 3.2",
        "leaky kinds (mul/div/mod/pow/xor) ~100% KPA under the original table; "
        "reduced under the fixed table");

    // The two table configurations have always owned dedicated seeds (seed,
    // seed + 1), so sharding them preserves every score bit-for-bit.
    support::TaskPool pool{support::threadsForTasks(threads, 2)};
    const auto scores = pool.map(2, [&](std::size_t index) {
      support::Rng rng{seed + index};
      return attackAndScore(
          index == 0 ? lock::PairTable::assureOriginal() : lock::PairTable::fixed(), samples,
          relocks, rng);
    });
    const auto& leaky = scores[0];
    const auto& fixed = scores[1];

    support::Table table{{"real op", "locked bits", "KPA% (original table)",
                          "KPA% (fixed table)", "leaky by construction"}};
    PerKind leakyAsymmetric;
    PerKind leakySymmetric;
    PerKind fixedAll;
    for (const auto& [kind, leakyScore] : leaky) {
      const auto it = fixed.find(kind);
      const double leakyKpa = 100.0 * leakyScore.correct / std::max(1, leakyScore.total);
      const double fixedKpa =
          it == fixed.end() ? 0.0 : 100.0 * it->second.correct / std::max(1, it->second.total);
      const auto& original = lock::PairTable::assureOriginal();
      const bool asymmetric =
          original.dummyFor(original.dummyFor(kind)) != kind;
      table.addRow({std::string{rtl::opName(kind)}, std::to_string(leakyScore.total),
                    support::formatDouble(leakyKpa, 2), support::formatDouble(fixedKpa, 2),
                    asymmetric ? "yes" : "no"});
      auto& bucket = asymmetric ? leakyAsymmetric : leakySymmetric;
      bucket.correct += leakyScore.correct;
      bucket.total += leakyScore.total;
      if (it != fixed.end()) {
        fixedAll.correct += it->second.correct;
        fixedAll.total += it->second.total;
      }
    }
    rtlock::bench::emit(table, csv);

    std::cout << "\nsummary (aggregated over kinds):\n";
    support::Table summary{{"group", "KPA%"}};
    summary.addRow({"asymmetric (leaky) kinds, original table",
                    support::formatDouble(
                        100.0 * leakyAsymmetric.correct / std::max(1, leakyAsymmetric.total), 2)});
    summary.addRow({"symmetric kinds, original table",
                    support::formatDouble(
                        100.0 * leakySymmetric.correct / std::max(1, leakySymmetric.total), 2)});
    summary.addRow({"all kinds, fixed involutive table (balanced design)",
                    support::formatDouble(100.0 * fixedAll.correct / std::max(1, fixedAll.total),
                                          2)});
    rtlock::bench::emit(summary, csv);
  });
}
