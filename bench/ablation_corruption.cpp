// Extension study — wrong-key output corruption.
//
// The paper lists output corruptibility among the "multiple security
// objectives" HRA can balance (Sec. 5.1).  This bench measures, per locking
// algorithm, the average fraction of corrupted output bits under (a) a
// uniformly random wrong key and (b) the all-bits-flipped key, plus the
// equivalence check under the correct key (must be 0 corruption).
#include "common.hpp"
#include "core/algorithms.hpp"
#include "designs/registry.hpp"
#include "sim/harness.hpp"

int main(int argc, char** argv) {
  using namespace rtlock;
  return bench::runBench([&] {
    const support::CliArgs args(argc, argv, {"seed", "csv", "budget", "vectors"});
    const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
    const bool csv = args.getBool("csv", false);
    const double budgetFraction = args.getDouble("budget", 0.75);

    sim::EquivalenceOptions options;
    options.vectors = static_cast<int>(args.getInt("vectors", 16));
    options.cyclesPerVector = 40;

    bench::banner("Wrong-key output corruption",
                  "extension of Sisejkovic et al., DAC'22, Sec. 5.1 (objectives discussion)",
                  "0% corruption under the correct key; substantial corruption under wrong "
                  "keys for every algorithm");

    support::Table table{{"benchmark", "algorithm", "key bits", "corrupt% (correct key)",
                          "corrupt% (random key)", "corrupt% (flipped key)"}};

    support::Rng rng{seed};
    for (const auto* name : {"FIR", "IIR", "MD5", "SHA256", "DES3", "RSA"}) {
      const rtl::Module original = designs::makeBenchmark(name);
      for (const auto algorithm :
           {lock::Algorithm::AssureSerial, lock::Algorithm::Hra, lock::Algorithm::Era}) {
        rtl::Module locked = original.clone();
        lock::LockEngine engine{locked, lock::PairTable::fixed()};
        const int budget = std::max(
            1, static_cast<int>(budgetFraction *
                                static_cast<double>(engine.initialLockableOps())));
        lock::lockWithAlgorithm(engine, algorithm, budget, rng);

        sim::BitVector correct{locked.keyWidth()};
        sim::BitVector flipped{locked.keyWidth()};
        for (const auto& record : engine.records()) {
          correct.setBit(record.keyIndex, record.keyValue);
          flipped.setBit(record.keyIndex, !record.keyValue);
        }
        const sim::BitVector randomKey = sim::BitVector::random(locked.keyWidth(), rng);

        support::Rng simRng{seed + 77};
        const double okCorruption =
            sim::outputCorruption(original, locked, correct, options, simRng);
        const double randomCorruption =
            sim::outputCorruption(original, locked, randomKey, options, simRng);
        const double flippedCorruption =
            sim::outputCorruption(original, locked, flipped, options, simRng);

        table.addRow({name, std::string{lock::algorithmName(algorithm)},
                      std::to_string(locked.keyWidth()),
                      support::formatDouble(100.0 * okCorruption, 2),
                      support::formatDouble(100.0 * randomCorruption, 2),
                      support::formatDouble(100.0 * flippedCorruption, 2)});
      }
    }
    bench::emit(table, csv);
  });
}
