// Sec. 5 cost claim — "the cost of the proposed algorithms are in line with
// the original ASSURE, as the cost of a locking pair per key bit has not
// changed."
//
// For every benchmark and algorithm the bench reports key bits consumed,
// operations added (dummy ops visible to an attacker), expression-node
// growth, and the ops-added-per-key-bit ratio, which must be 1.0 for every
// algorithm on the three-address benchmark designs.
#include "common.hpp"
#include "core/algorithms.hpp"
#include "designs/registry.hpp"
#include "rtl/stats.hpp"

int main(int argc, char** argv) {
  using namespace rtlock;
  return bench::runBench([&] {
    const support::CliArgs args(argc, argv, {"seed", "csv", "budget"});
    const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
    const bool csv = args.getBool("csv", false);
    const double budgetFraction = args.getDouble("budget", 0.75);

    bench::banner("Locking overhead — cost per key bit",
                  "Sisejkovic et al., DAC'22, Sec. 5 (cost discussion)",
                  "one locking pair (one dummy op, one mux) per key bit for every algorithm");

    const std::vector<lock::Algorithm> algorithms{
        lock::Algorithm::AssureSerial, lock::Algorithm::Hra, lock::Algorithm::Greedy,
        lock::Algorithm::Era};

    support::Table table{{"benchmark", "algorithm", "ops before", "key bits", "ops added",
                          "ops/bit", "nodes before", "nodes after", "M^g", "M^r"}};

    support::Rng rng{seed};
    for (const auto& name : designs::benchmarkNames()) {
      for (const auto algorithm : algorithms) {
        rtl::Module module = designs::makeBenchmark(name);
        const rtl::ModuleStats before = rtl::computeStats(module);
        lock::LockEngine engine{module, lock::PairTable::fixed()};
        const int opsBefore = engine.initialLockableOps();
        const int budget =
            std::max(1, static_cast<int>(budgetFraction * static_cast<double>(opsBefore)));
        const auto report = lock::lockWithAlgorithm(engine, algorithm, budget, rng);
        const rtl::ModuleStats after = rtl::computeStats(module);

        const int opsAdded = engine.totalLockableOps() - opsBefore;
        table.addRow({name, std::string{lock::algorithmName(algorithm)},
                      std::to_string(opsBefore), std::to_string(report.bitsUsed),
                      std::to_string(opsAdded),
                      support::formatDouble(report.bitsUsed == 0
                                                ? 0.0
                                                : static_cast<double>(opsAdded) /
                                                      static_cast<double>(report.bitsUsed),
                                            3),
                      std::to_string(before.exprNodes), std::to_string(after.exprNodes),
                      support::formatDouble(report.finalGlobalMetric, 1),
                      support::formatDouble(report.finalRestrictedMetric, 1)});
      }
    }
    bench::emit(table, csv);
  });
}
