// Fig. 4 — Impact of operation selection on learning resilience (the '+'
// network thought experiment of Sec. 3).
//
// For each selection policy the bench locks a pure '+' network (test set),
// relocks it with known keys (training set), and reports what an attacker
// learns: the conditional probability P(key = 1 | locality) for each observed
// locality, and the resulting "which operation is real" inference.
//
//   (b,e) serial test + serial relocking  -> contradictory observations
//   (c,f) random test + random relocking  -> '+' is *mostly* the real op
//   (d,g) serial test + disjoint training -> '+' is *always* the real op
#include <algorithm>
#include <map>

#include "attack/locality.hpp"
#include "common.hpp"
#include "fig4_scenarios.hpp"

namespace {

using namespace rtlock;
using bench::Fig4Scenario;

std::string codeName(int code) {
  if (code == attack::kMuxCode) return "mux";
  if (code >= 1 && code <= rtl::kOpKindCount) {
    return std::string{rtl::opName(static_cast<rtl::OpKind>(code - 1))};
  }
  return "other";
}

void report(const std::string& scenario, const std::string& figure,
            const bench::Fig4Observations& observations, bool csv) {
  std::cout << "--- " << scenario << " (" << figure << ") ---\n";
  support::Table table{{"locality (C1,C2)", "observations", "P(key=1)", "inference"}};
  double worstBias = 0.0;
  for (const auto& [locality, observation] : observations) {
    const double p = observation.pOne();
    worstBias = std::max(worstBias, std::abs(p - 0.5));
    std::string inference = "ambiguous";
    if (p > 0.6) inference = codeName(locality.first) + " is likely real";
    if (p < 0.4) inference = codeName(locality.second) + " is likely real";
    table.addRow({"(" + codeName(locality.first) + "," + codeName(locality.second) + ")",
                  std::to_string(observation.total), support::formatDouble(p, 3), inference});
  }
  rtlock::bench::emit(table, csv);
  std::cout << "learned: "
            << (worstBias < 0.1 ? "operations equally likely — nothing exploitable"
                                : "key-correlated locality bias of " +
                                      support::formatDouble(worstBias, 3) + " — exploitable")
            << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  return rtlock::bench::runBench([&] {
    const support::CliArgs args(argc, argv,
                                {"seed", "csv", "network", "bits", "relocks", "threads"});
    const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
    const bool csv = args.getBool("csv", false);
    const int network = static_cast<int>(args.getInt("network", 64));
    const int bits = static_cast<int>(args.getInt("bits", 32));
    const int rounds = static_cast<int>(args.getInt("relocks", 200));

    rtlock::bench::banner(
        "Fig. 4 — operation selection vs. learning resilience",
        "Sisejkovic et al., DAC'22, Fig. 4 (b,e), (c,f), (d,g)",
        "serial: P(key=1|locality) = 0.5 everywhere; random: '+' biased toward real; "
        "disjoint: '+' always real");

    // Each scenario has owned its dedicated seed (seed + offset) since the
    // serial version, so sharding the scenarios preserves every observation
    // bit-for-bit at any thread count.
    struct Cell {
      Fig4Scenario scenario;
      std::uint64_t seedOffset;
      const char* title;
      const char* figure;
    };
    const std::vector<Cell> cells{
        {Fig4Scenario::SerialSerial, 0, "serial test + serial relocking", "Fig. 4b/4e"},
        {Fig4Scenario::RandomRandom, 1, "random test + random relocking (overlapping)",
         "Fig. 4c/4f"},
        {Fig4Scenario::SerialDisjoint, 2, "serial test + disjoint training (no overlap)",
         "Fig. 4d/4g"}};

    support::TaskPool pool{
        support::threadsForTasks(rtlock::bench::requestedThreads(args), cells.size())};
    const auto observations = pool.map(cells.size(), [&](std::size_t index) {
      support::Rng rng{seed + cells[index].seedOffset};
      return bench::observeFig4(cells[index].scenario, network, bits, rounds, rng);
    });

    for (std::size_t index = 0; index < cells.size(); ++index) {
      report(cells[index].title, cells[index].figure, observations[index], csv);
    }
  });
}
