// Baseline runner: one binary that re-runs the headline figure reproductions
// (Fig. 4/5/6) plus the hot-path microbenchmarks with fixed seeds and emits a
// machine-readable BENCH_baseline.json, so optimisation PRs have a recorded
// perf/quality trajectory to compare against.
//
// Flags:
//   --seed=N    master seed (default 1; every section derives fixed offsets)
//   --json      write BENCH_baseline.json (see --out) in addition to stdout
//   --out=PATH  JSON output path (default BENCH_baseline.json)
//   --full      paper-sized fig6 configuration (slow); default is a quick,
//               fixed-seed configuration sized for CI
//
// JSON schema: {"schema": "...", "seed": N, "rows": [{bench, config, metric,
// value, wall_ms}, ...]}.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "attack/locality.hpp"
#include "attack/pipeline.hpp"
#include "common.hpp"
#include "fig4_scenarios.hpp"
#include "core/algorithms.hpp"
#include "core/metric.hpp"
#include "designs/networks.hpp"
#include "designs/registry.hpp"
#include "sim/compiled_sim.hpp"
#include "sim/evaluator.hpp"
#include "sim/harness.hpp"
#include "verilog/parser.hpp"
#include "verilog/writer.hpp"

namespace {

using namespace rtlock;
using Clock = std::chrono::steady_clock;

struct Row {
  std::string bench;
  std::string config;
  std::string metric;
  double value = 0.0;
  double wallMs = 0.0;
};

double elapsedMs(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

/// Runs `body` and appends a row holding its result plus wall time.
template <typename Body>
void timedRow(std::vector<Row>& rows, std::string bench, std::string config, std::string metric,
              Body&& body) {
  const auto start = Clock::now();
  const double value = body();
  rows.push_back({std::move(bench), std::move(config), std::move(metric), value,
                  elapsedMs(start)});
}

// --- Fig. 4: worst key-correlated locality bias per relocking scenario -----
//
// Shares the observation loop with bench/fig4_observations.cpp via
// fig4_scenarios.hpp, reduced to the headline number per scenario.

void runFig4(std::vector<Row>& rows, std::uint64_t seed) {
  constexpr int kNetworkSize = 64;
  constexpr int kTestBits = 32;
  constexpr int kRounds = 100;
  const auto worstBias = [&](bench::Fig4Scenario scenario, std::uint64_t scenarioSeed) {
    support::Rng rng{scenarioSeed};
    return bench::fig4WorstBias(
        bench::observeFig4(scenario, kNetworkSize, kTestBits, kRounds, rng));
  };
  timedRow(rows, "fig4", "serial+serial", "worst_locality_bias",
           [&] { return worstBias(bench::Fig4Scenario::SerialSerial, seed); });
  timedRow(rows, "fig4", "random+random", "worst_locality_bias",
           [&] { return worstBias(bench::Fig4Scenario::RandomRandom, seed + 1); });
  timedRow(rows, "fig4", "serial+disjoint", "worst_locality_bias",
           [&] { return worstBias(bench::Fig4Scenario::SerialDisjoint, seed + 2); });
}

// --- Fig. 5: key-bit cost and final metric per algorithm -------------------

void runFig5(std::vector<Row>& rows, std::uint64_t seed) {
  constexpr int kBudget = 60;
  for (const auto algorithm :
       {lock::Algorithm::Era, lock::Algorithm::Hra, lock::Algorithm::Greedy}) {
    const std::string name{lock::algorithmName(algorithm)};
    lock::AlgorithmReport report;
    timedRow(rows, "fig5", name, "bits_used", [&] {
      rtl::Module design = designs::makeOperationNetwork(
          "fig5", {{rtl::OpKind::Add, 25}, {rtl::OpKind::Shl, 10}});
      lock::LockEngine engine{design, lock::PairTable::fixed()};
      support::Rng rng{seed};
      report = lock::lockWithAlgorithm(engine, algorithm, kBudget, rng);
      return static_cast<double>(report.bitsUsed);
    });
    rows.push_back({"fig5", name, "final_global_metric", report.finalGlobalMetric, 0.0});
  }
}

// --- Fig. 6: mean SnapShot-RTL KPA per algorithm ---------------------------

void runFig6(std::vector<Row>& rows, std::uint64_t seed, bool full) {
  attack::EvaluationConfig config;
  config.testLocks = full ? 10 : 1;
  config.keyBudgetFraction = 0.75;
  config.snapshot.relockRounds = full ? 1000 : 30;
  config.snapshot.relockBudgetFraction = config.keyBudgetFraction;
  config.snapshot.automl.folds = 3;

  const std::vector<std::string> benchmarks =
      full ? designs::benchmarkNames() : std::vector<std::string>{"FIR", "SASC"};
  const std::vector<lock::Algorithm> algorithms{
      lock::Algorithm::AssureSerial, lock::Algorithm::Hra, lock::Algorithm::Era};
  const std::string benchConfig =
      support::join(benchmarks, "+") + (full ? " (paper-sized)" : " (quick)");

  support::Rng rng{seed + 100};
  for (const auto algorithm : algorithms) {
    timedRow(rows, "fig6", std::string{lock::algorithmName(algorithm)} + " / " + benchConfig,
             "mean_kpa_percent", [&] {
               double sum = 0.0;
               for (const auto& name : benchmarks) {
                 const rtl::Module original = designs::makeBenchmark(name);
                 sum += attack::evaluateBenchmark(original, name, algorithm,
                                                  lock::PairTable::fixed(), config, rng)
                            .meanKpa;
               }
               return sum / static_cast<double>(benchmarks.size());
             });
  }
}

// --- perf: chrono timings of the hot paths perf_microbench covers ----------

void runPerf(std::vector<Row>& rows, std::uint64_t seed) {
  {
    rtl::Module module = designs::makePlusNetwork(1024);
    lock::LockEngine engine{module, lock::PairTable::fixed()};
    support::Rng rng{seed};
    constexpr int kIterations = 2000;
    timedRow(rows, "perf", "plus_network_1024", "lock_undo_us_per_op", [&] {
      const auto start = Clock::now();
      for (int i = 0; i < kIterations; ++i) {
        const auto checkpoint = engine.checkpoint();
        (void)engine.lockRandomOp(rng);
        engine.undoTo(checkpoint);
      }
      return elapsedMs(start) * 1000.0 / kIterations;
    });
  }
  {
    rtl::Module module = designs::makePlusNetwork(1024);
    lock::LockEngine engine{module, lock::PairTable::fixed()};
    support::Rng rng{seed + 1};
    lock::assureRandomLock(engine, static_cast<int>(0.75 * engine.initialLockableOps()), rng);
    constexpr int kIterations = 50;
    timedRow(rows, "perf", "plus_network_1024 @75%", "extract_localities_ms", [&] {
      const auto start = Clock::now();
      for (int i = 0; i < kIterations; ++i) {
        if (attack::extractLocalities(module, {}).empty()) return -1.0;
      }
      return elapsedMs(start) / kIterations;
    });
  }
  {
    const rtl::Module module = designs::makeBenchmark("MD5");
    const std::string text = verilog::writeModule(module);
    constexpr int kIterations = 20;
    timedRow(rows, "perf", "MD5", "verilog_roundtrip_ms", [&] {
      const auto start = Clock::now();
      for (int i = 0; i < kIterations; ++i) {
        if (verilog::writeModule(verilog::parseModule(text)).empty()) return -1.0;
      }
      return elapsedMs(start) / kIterations;
    });
  }
  {
    const rtl::Module module = designs::makeBenchmark("SHA256");
    support::Rng rng{seed + 2};
    const auto blk = *module.findSignal("blk");
    const auto digest = *module.findSignal("digest");
    // Production backend: compiled bytecode tape (this is the headline
    // simulate_cycle_us row that optimisation PRs track).
    {
      sim::CompiledSim compiled{module};
      constexpr int kIterations = 2000;
      timedRow(rows, "perf", "SHA256", "simulate_cycle_us", [&] {
        const auto start = Clock::now();
        for (int i = 0; i < kIterations; ++i) {
          compiled.setValue(blk, sim::BitVector::random(32, rng));
          compiled.settle();
          (void)compiled.value(digest);
        }
        return elapsedMs(start) * 1000.0 / kIterations;
      });
    }
    // Reference interpreter, for the backend-vs-backend trajectory.
    {
      sim::Evaluator eval{module};
      constexpr int kIterations = 200;
      timedRow(rows, "perf", "SHA256 (interpreter)", "simulate_cycle_us", [&] {
        const auto start = Clock::now();
        for (int i = 0; i < kIterations; ++i) {
          eval.setValue(blk, sim::BitVector::random(32, rng));
          eval.settle();
          (void)eval.value(digest);
        }
        return elapsedMs(start) * 1000.0 / kIterations;
      });
    }
  }
  {
    // Corruption sweep: compile a locked SHA256 pair once, then measure
    // output corruption under many hypothesis keys (the oracle-guided
    // attack's hot loop shape).
    const rtl::Module original = designs::makeBenchmark("SHA256");
    rtl::Module locked = original.clone();
    lock::LockEngine engine{locked, lock::PairTable::fixed()};
    support::Rng lockRng{seed + 4};
    lock::assureRandomLock(engine, engine.initialLockableOps() / 2, lockRng);
    sim::Harness harness{original, locked};
    sim::EquivalenceOptions options;
    options.vectors = 4;
    options.cyclesPerVector = 4;
    support::Rng rng{seed + 5};
    constexpr int kKeys = 20;
    timedRow(rows, "perf", "SHA256 locked@50%", "corruption_sweep_ms", [&] {
      const auto start = Clock::now();
      for (int i = 0; i < kKeys; ++i) {
        support::Rng stimulusRng{seed + 6};
        (void)harness.outputCorruption(sim::BitVector::random(locked.keyWidth(), rng),
                                       options, stimulusRng);
      }
      return elapsedMs(start) / kKeys;
    });
  }
  {
    constexpr int kIterations = 5;
    timedRow(rows, "perf", "era plus_network_256", "era_lock_ms", [&] {
      double totalMs = 0.0;
      for (int i = 0; i < kIterations; ++i) {
        rtl::Module module = designs::makePlusNetwork(256);
        lock::LockEngine engine{module, lock::PairTable::fixed()};
        support::Rng rng{seed + 3};
        const auto start = Clock::now();
        (void)lock::eraLock(engine, engine.initialLockableOps(), rng);
        totalMs += elapsedMs(start);
      }
      return totalMs / kIterations;
    });
  }
}

// --- output ----------------------------------------------------------------

std::string jsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof buffer, "\\u%04x", static_cast<unsigned>(c));
      out += buffer;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

void writeJson(std::ostream& out, const std::vector<Row>& rows, std::uint64_t seed) {
  out << "{\n  \"schema\": \"rtlock-bench-baseline/v1\",\n  \"seed\": " << seed
      << ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    out << "    {\"bench\": \"" << jsonEscape(row.bench) << "\", \"config\": \""
        << jsonEscape(row.config) << "\", \"metric\": \"" << jsonEscape(row.metric)
        << "\", \"value\": " << support::formatDouble(row.value, 4)
        << ", \"wall_ms\": " << support::formatDouble(row.wallMs, 2) << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  return rtlock::bench::runBench([&] {
    const support::CliArgs args(argc, argv, {"seed", "json", "out", "full", "csv"});
    const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
    const bool json = args.getBool("json", false);
    const bool full = args.getBool("full", false);
    const bool csv = args.getBool("csv", false);
    const std::string outPath = args.get("out", "BENCH_baseline.json");

    rtlock::bench::banner("baseline runner — perf/quality trajectory seed",
                          "Fig. 4/5/6 headline numbers + hot-path timings, fixed seeds",
                          "deterministic values per (seed, config); timings machine-dependent");

    std::vector<Row> rows;
    const auto start = Clock::now();
    runFig4(rows, seed);
    runFig5(rows, seed);
    runFig6(rows, seed, full);
    runPerf(rows, seed);

    support::Table table{{"bench", "config", "metric", "value", "wall_ms"}};
    for (const Row& row : rows) {
      table.addRow({row.bench, row.config, row.metric, support::formatDouble(row.value, 4),
                    support::formatDouble(row.wallMs, 2)});
    }
    rtlock::bench::emit(table, csv);
    std::cout << "\n" << rows.size() << " metric rows in "
              << support::formatDouble(elapsedMs(start), 0) << " ms\n";

    if (json) {
      std::ofstream file{outPath};
      if (!file) throw support::Error("cannot open " + outPath + " for writing");
      writeJson(file, rows, seed);
      std::cout << "wrote " << outPath << "\n";
    }
  });
}
