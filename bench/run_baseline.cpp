// Baseline runner: one binary that re-runs the headline figure reproductions
// (Fig. 4/5/6) plus the hot-path microbenchmarks with fixed seeds and emits a
// machine-readable BENCH_baseline.json, so optimisation PRs have a recorded
// perf/quality trajectory to compare against.
//
// Flags:
//   --seed=N    master seed (default 1; every section derives fixed offsets)
//   --json      write BENCH_baseline.json (see --out) in addition to stdout
//   --out=PATH  JSON output path (default BENCH_baseline.json)
//   --full      paper-sized fig6 configuration (slow); default is a quick,
//               fixed-seed configuration sized for CI
//   --threads=N experiment-engine workers (default: RTLOCK_THREADS env, else
//               hardware concurrency).  Quality rows are bit-identical at
//               every thread count; only wall times vary.
//
// JSON schema: {"schema": "...", "seed": N, "rows": [{bench, config, metric,
// value, wall_ms}, ...]}.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "attack/locality.hpp"
#include "attack/pipeline.hpp"
#include "common.hpp"
#include "fig4_scenarios.hpp"
#include "core/algorithms.hpp"
#include "core/metric.hpp"
#include "designs/networks.hpp"
#include "designs/registry.hpp"
#include "sim/compiled_sim.hpp"
#include "sim/evaluator.hpp"
#include "sim/harness.hpp"
#include "verilog/parser.hpp"
#include "verilog/writer.hpp"

namespace {

using namespace rtlock;
using Clock = std::chrono::steady_clock;

struct Row {
  std::string bench;
  std::string config;
  std::string metric;
  double value = 0.0;
  double wallMs = 0.0;
};

double elapsedMs(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

/// Runs `body` and appends a row holding its result plus wall time.
template <typename Body>
void timedRow(std::vector<Row>& rows, std::string bench, std::string config, std::string metric,
              Body&& body) {
  const auto start = Clock::now();
  const double value = body();
  rows.push_back({std::move(bench), std::move(config), std::move(metric), value,
                  elapsedMs(start)});
}

// --- Fig. 4: worst key-correlated locality bias per relocking scenario -----
//
// Shares the observation loop with bench/fig4_observations.cpp via
// fig4_scenarios.hpp, reduced to the headline number per scenario.  The
// scenarios have always owned dedicated seeds (seed + offset), so sharding
// them keeps every bias value bit-identical; wall time is measured inside
// each task.

void runFig4(std::vector<Row>& rows, std::uint64_t seed, int threads) {
  constexpr int kNetworkSize = 64;
  constexpr int kTestBits = 32;
  constexpr int kRounds = 100;
  const std::vector<std::pair<const char*, bench::Fig4Scenario>> cells{
      {"serial+serial", bench::Fig4Scenario::SerialSerial},
      {"random+random", bench::Fig4Scenario::RandomRandom},
      {"serial+disjoint", bench::Fig4Scenario::SerialDisjoint}};
  support::TaskPool pool{support::threadsForTasks(threads, cells.size())};
  const auto results = pool.map(cells.size(), [&](std::size_t index) {
    const auto start = Clock::now();
    support::Rng rng{seed + index};
    const double bias = bench::fig4WorstBias(
        bench::observeFig4(cells[index].second, kNetworkSize, kTestBits, kRounds, rng));
    return std::pair<double, double>{bias, elapsedMs(start)};
  });
  for (std::size_t index = 0; index < cells.size(); ++index) {
    rows.push_back({"fig4", cells[index].first, "worst_locality_bias", results[index].first,
                    results[index].second});
  }
}

// --- Fig. 5: key-bit cost and final metric per algorithm -------------------

void runFig5(std::vector<Row>& rows, std::uint64_t seed, int threads) {
  constexpr int kBudget = 60;
  const std::vector<lock::Algorithm> algorithms{
      lock::Algorithm::Era, lock::Algorithm::Hra, lock::Algorithm::Greedy};
  struct Cell {
    lock::AlgorithmReport report;
    double wallMs = 0.0;
  };
  // Every cell restarts from rng{seed}, exactly as the serial loop did.
  support::TaskPool pool{support::threadsForTasks(threads, algorithms.size())};
  const auto cells = pool.map(algorithms.size(), [&](std::size_t index) {
    const auto start = Clock::now();
    rtl::Module design = designs::makeOperationNetwork(
        "fig5", {{rtl::OpKind::Add, 25}, {rtl::OpKind::Shl, 10}});
    lock::LockEngine engine{design, lock::PairTable::fixed()};
    support::Rng rng{seed};
    Cell cell;
    cell.report = lock::lockWithAlgorithm(engine, algorithms[index], kBudget, rng);
    cell.wallMs = elapsedMs(start);
    return cell;
  });
  for (std::size_t index = 0; index < algorithms.size(); ++index) {
    const std::string name{lock::algorithmName(algorithms[index])};
    rows.push_back({"fig5", name, "bits_used",
                    static_cast<double>(cells[index].report.bitsUsed), cells[index].wallMs});
    rows.push_back(
        {"fig5", name, "final_global_metric", cells[index].report.finalGlobalMetric, 0.0});
  }
}

// --- Fig. 6: mean SnapShot-RTL KPA per algorithm ---------------------------
//
// One task per (algorithm, benchmark) cell; cell i draws only from
// substream(i) of the section root, so the grid is bit-identical at every
// thread count (the engine's seeding convention — see support/task_pool.hpp).
// The whole grid is timed as one batch and recorded as the
// fig6_quick/wall_ms (or fig6_full/wall_ms) perf row that optimisation PRs
// track; per-algorithm quality rows carry no wall time of their own.

void runFig6(std::vector<Row>& rows, std::uint64_t seed, bool full, int threads) {
  attack::EvaluationConfig config;
  config.testLocks = full ? 10 : 1;
  config.keyBudgetFraction = 0.75;
  config.snapshot.relockRounds = full ? 1000 : 30;
  config.snapshot.relockBudgetFraction = config.keyBudgetFraction;
  config.snapshot.automl.folds = 3;
  config.threads = 1;  // grid cells are the outer parallelism level

  const std::vector<std::string> benchmarks =
      full ? designs::benchmarkNames() : std::vector<std::string>{"FIR", "SASC"};
  const std::vector<lock::Algorithm> algorithms{
      lock::Algorithm::AssureSerial, lock::Algorithm::Hra, lock::Algorithm::Era};
  const std::string benchConfig =
      support::join(benchmarks, "+") + (full ? " (paper-sized)" : " (quick)");

  // Build each benchmark once; tasks clone from the shared const module.
  std::vector<rtl::Module> originals;
  originals.reserve(benchmarks.size());
  for (const auto& name : benchmarks) originals.push_back(designs::makeBenchmark(name));

  const support::Rng root{seed + 100};
  // Construct the pool outside the timed region: the fig6 wall row tracks
  // grid execution, not worker spawn/join overhead.
  support::TaskPool pool{
      support::threadsForTasks(threads, algorithms.size() * benchmarks.size())};
  const auto start = Clock::now();
  const auto cells = pool.map(
      algorithms.size() * benchmarks.size(), [&](std::size_t index) {
        const lock::Algorithm algorithm = algorithms[index / benchmarks.size()];
        const std::size_t b = index % benchmarks.size();
        support::Rng cellRng = root.substream(index);
        return attack::evaluateBenchmark(originals[b], benchmarks[b], algorithm,
                                         lock::PairTable::fixed(), config, cellRng)
            .meanKpa;
      });
  const double gridWallMs = elapsedMs(start);

  for (std::size_t a = 0; a < algorithms.size(); ++a) {
    double sum = 0.0;
    for (std::size_t b = 0; b < benchmarks.size(); ++b) sum += cells[a * benchmarks.size() + b];
    rows.push_back({"fig6", std::string{lock::algorithmName(algorithms[a])} + " / " + benchConfig,
                    "mean_kpa_percent", sum / static_cast<double>(benchmarks.size()), 0.0});
  }
  rows.push_back({"perf", full ? "fig6_full" : "fig6_quick", "wall_ms", gridWallMs, gridWallMs});
}

// --- perf: chrono timings of the hot paths perf_microbench covers ----------

void runPerf(std::vector<Row>& rows, std::uint64_t seed) {
  {
    rtl::Module module = designs::makePlusNetwork(1024);
    lock::LockEngine engine{module, lock::PairTable::fixed()};
    support::Rng rng{seed};
    constexpr int kIterations = 2000;
    timedRow(rows, "perf", "plus_network_1024", "lock_undo_us_per_op", [&] {
      const auto start = Clock::now();
      for (int i = 0; i < kIterations; ++i) {
        const auto checkpoint = engine.checkpoint();
        (void)engine.lockRandomOp(rng);
        engine.undoTo(checkpoint);
      }
      return elapsedMs(start) * 1000.0 / kIterations;
    });
  }
  {
    rtl::Module module = designs::makePlusNetwork(1024);
    lock::LockEngine engine{module, lock::PairTable::fixed()};
    support::Rng rng{seed + 1};
    lock::assureRandomLock(engine, static_cast<int>(0.75 * engine.initialLockableOps()), rng);
    constexpr int kIterations = 50;
    timedRow(rows, "perf", "plus_network_1024 @75%", "extract_localities_ms", [&] {
      const auto start = Clock::now();
      for (int i = 0; i < kIterations; ++i) {
        if (attack::extractLocalities(module, {}).empty()) return -1.0;
      }
      return elapsedMs(start) / kIterations;
    });
  }
  {
    const rtl::Module module = designs::makeBenchmark("MD5");
    const std::string text = verilog::writeModule(module);
    constexpr int kIterations = 20;
    timedRow(rows, "perf", "MD5", "verilog_roundtrip_ms", [&] {
      const auto start = Clock::now();
      for (int i = 0; i < kIterations; ++i) {
        if (verilog::writeModule(verilog::parseModule(text)).empty()) return -1.0;
      }
      return elapsedMs(start) / kIterations;
    });
  }
  {
    const rtl::Module module = designs::makeBenchmark("SHA256");
    support::Rng rng{seed + 2};
    const auto blk = *module.findSignal("blk");
    const auto digest = *module.findSignal("digest");
    // Production backend: compiled bytecode tape (this is the headline
    // simulate_cycle_us row that optimisation PRs track).
    {
      sim::CompiledSim compiled{module};
      constexpr int kIterations = 2000;
      timedRow(rows, "perf", "SHA256", "simulate_cycle_us", [&] {
        const auto start = Clock::now();
        for (int i = 0; i < kIterations; ++i) {
          compiled.setValue(blk, sim::BitVector::random(32, rng));
          compiled.settle();
          (void)compiled.value(digest);
        }
        return elapsedMs(start) * 1000.0 / kIterations;
      });
    }
    // Reference interpreter, for the backend-vs-backend trajectory.
    {
      sim::Evaluator eval{module};
      constexpr int kIterations = 200;
      timedRow(rows, "perf", "SHA256 (interpreter)", "simulate_cycle_us", [&] {
        const auto start = Clock::now();
        for (int i = 0; i < kIterations; ++i) {
          eval.setValue(blk, sim::BitVector::random(32, rng));
          eval.settle();
          (void)eval.value(digest);
        }
        return elapsedMs(start) * 1000.0 / kIterations;
      });
    }
  }
  {
    // Corruption sweep: compile a locked SHA256 pair once, then measure
    // output corruption under many hypothesis keys (the oracle-guided
    // attack's hot loop shape).
    const rtl::Module original = designs::makeBenchmark("SHA256");
    rtl::Module locked = original.clone();
    lock::LockEngine engine{locked, lock::PairTable::fixed()};
    support::Rng lockRng{seed + 4};
    lock::assureRandomLock(engine, engine.initialLockableOps() / 2, lockRng);
    sim::Harness harness{original, locked};
    sim::EquivalenceOptions options;
    options.vectors = 4;
    options.cyclesPerVector = 4;
    support::Rng rng{seed + 5};
    constexpr int kKeys = 20;
    timedRow(rows, "perf", "SHA256 locked@50%", "corruption_sweep_ms", [&] {
      const auto start = Clock::now();
      for (int i = 0; i < kKeys; ++i) {
        support::Rng stimulusRng{seed + 6};
        (void)harness.outputCorruption(sim::BitVector::random(locked.keyWidth(), rng),
                                       options, stimulusRng);
      }
      return elapsedMs(start) / kKeys;
    });
  }
  {
    constexpr int kIterations = 5;
    timedRow(rows, "perf", "era plus_network_256", "era_lock_ms", [&] {
      double totalMs = 0.0;
      for (int i = 0; i < kIterations; ++i) {
        rtl::Module module = designs::makePlusNetwork(256);
        lock::LockEngine engine{module, lock::PairTable::fixed()};
        support::Rng rng{seed + 3};
        const auto start = Clock::now();
        (void)lock::eraLock(engine, engine.initialLockableOps(), rng);
        totalMs += elapsedMs(start);
      }
      return totalMs / kIterations;
    });
  }
}

// --- output ----------------------------------------------------------------

std::string jsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof buffer, "\\u%04x", static_cast<unsigned>(c));
      out += buffer;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

void writeJson(std::ostream& out, const std::vector<Row>& rows, std::uint64_t seed) {
  out << "{\n  \"schema\": \"rtlock-bench-baseline/v1\",\n  \"seed\": " << seed
      << ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    out << "    {\"bench\": \"" << jsonEscape(row.bench) << "\", \"config\": \""
        << jsonEscape(row.config) << "\", \"metric\": \"" << jsonEscape(row.metric)
        << "\", \"value\": " << support::formatDouble(row.value, 4)
        << ", \"wall_ms\": " << support::formatDouble(row.wallMs, 2) << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  return rtlock::bench::runBench([&] {
    const support::CliArgs args(argc, argv, {"seed", "json", "out", "full", "csv", "threads"});
    const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
    const bool json = args.getBool("json", false);
    const bool full = args.getBool("full", false);
    const bool csv = args.getBool("csv", false);
    const int threads = rtlock::bench::requestedThreads(args);
    const std::string outPath = args.get("out", "BENCH_baseline.json");

    rtlock::bench::banner("baseline runner — perf/quality trajectory seed",
                          "Fig. 4/5/6 headline numbers + hot-path timings, fixed seeds",
                          "deterministic values per (seed, config); timings machine-dependent");

    std::vector<Row> rows;
    const auto start = Clock::now();
    runFig4(rows, seed, threads);
    runFig5(rows, seed, threads);
    runFig6(rows, seed, full, threads);
    runPerf(rows, seed);

    support::Table table{{"bench", "config", "metric", "value", "wall_ms"}};
    for (const Row& row : rows) {
      table.addRow({row.bench, row.config, row.metric, support::formatDouble(row.value, 4),
                    support::formatDouble(row.wallMs, 2)});
    }
    rtlock::bench::emit(table, csv);
    std::cout << "\n" << rows.size() << " metric rows in "
              << support::formatDouble(elapsedMs(start), 0) << " ms\n";

    if (json) {
      std::ofstream file{outPath};
      if (!file) throw support::Error("cannot open " + outPath + " for writing");
      writeJson(file, rows, seed);
      std::cout << "wrote " << outPath << "\n";
    }
  });
}
