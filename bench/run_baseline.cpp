// Baseline runner: one binary that re-runs the headline figure reproductions
// (Fig. 4/5/6) plus the hot-path microbenchmarks with fixed seeds and emits a
// machine-readable BENCH_baseline.json, so optimisation PRs have a recorded
// perf/quality trajectory to compare against.
//
// Flags:
//   --seed=N    master seed (default 1; every section derives fixed offsets)
//   --json      write BENCH_baseline.json (see --out) in addition to stdout
//   --out=PATH  JSON output path (default BENCH_baseline.json)
//   --full      paper-sized fig6 configuration (slow); default is a quick,
//               fixed-seed configuration sized for CI
//   --threads=N experiment-engine workers (default: RTLOCK_THREADS env, else
//               hardware concurrency).  Quality rows are bit-identical at
//               every thread count; only wall times vary.
//   --check=PATH quality gate: compare every non-perf row of this run against
//               the committed baseline JSON at PATH and fail on any drift
//               (CI runs this against the repo-root BENCH_baseline.json).
//
// JSON schema: {"schema": "...", "seed": N, "rows": [{bench, config, metric,
// value, wall_ms}, ...]}.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "analysis/lint.hpp"
#include "analysis/verifier.hpp"
#include "attack/locality.hpp"
#include "attack/pipeline.hpp"
#include "campaign/journal.hpp"
#include "campaign/manifest.hpp"
#include "common.hpp"
#include "fig4_scenarios.hpp"
#include "core/algorithms.hpp"
#include "core/metric.hpp"
#include "designs/networks.hpp"
#include "designs/registry.hpp"
#include "service/server.hpp"
#include "service/session.hpp"
#include "sim/compiled_sim.hpp"
#include "sim/evaluator.hpp"
#include "sim/harness.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"
#include "verilog/parser.hpp"
#include "verilog/writer.hpp"

namespace {

using namespace rtlock;
using Clock = std::chrono::steady_clock;

struct Row {
  std::string bench;
  std::string config;
  std::string metric;
  double value = 0.0;
  double wallMs = 0.0;
};

double elapsedMs(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

/// Runs `body` and appends a row holding its result plus wall time.
template <typename Body>
void timedRow(std::vector<Row>& rows, std::string bench, std::string config, std::string metric,
              Body&& body) {
  const auto start = Clock::now();
  const double value = body();
  rows.push_back({std::move(bench), std::move(config), std::move(metric), value,
                  elapsedMs(start)});
}

// --- Fig. 4: worst key-correlated locality bias per relocking scenario -----
//
// Shares the observation loop with bench/fig4_observations.cpp via
// fig4_scenarios.hpp, reduced to the headline number per scenario.  The
// scenarios have always owned dedicated seeds (seed + offset), so sharding
// them keeps every bias value bit-identical; wall time is measured inside
// each task.

void runFig4(std::vector<Row>& rows, std::uint64_t seed, int threads) {
  constexpr int kNetworkSize = 64;
  constexpr int kTestBits = 32;
  constexpr int kRounds = 100;
  const std::vector<std::pair<const char*, bench::Fig4Scenario>> cells{
      {"serial+serial", bench::Fig4Scenario::SerialSerial},
      {"random+random", bench::Fig4Scenario::RandomRandom},
      {"serial+disjoint", bench::Fig4Scenario::SerialDisjoint}};
  support::TaskPool pool{support::threadsForTasks(threads, cells.size())};
  const auto results = pool.map(cells.size(), [&](std::size_t index) {
    const auto start = Clock::now();
    support::Rng rng{seed + index};
    const double bias = bench::fig4WorstBias(
        bench::observeFig4(cells[index].second, kNetworkSize, kTestBits, kRounds, rng));
    return std::pair<double, double>{bias, elapsedMs(start)};
  });
  for (std::size_t index = 0; index < cells.size(); ++index) {
    rows.push_back({"fig4", cells[index].first, "worst_locality_bias", results[index].first,
                    results[index].second});
  }
}

// --- Fig. 5: key-bit cost and final metric per algorithm -------------------

void runFig5(std::vector<Row>& rows, std::uint64_t seed, int threads) {
  constexpr int kBudget = 60;
  const std::vector<lock::Algorithm> algorithms{
      lock::Algorithm::Era, lock::Algorithm::Hra, lock::Algorithm::Greedy};
  struct Cell {
    lock::AlgorithmReport report;
    double wallMs = 0.0;
  };
  // Every cell restarts from rng{seed}, exactly as the serial loop did.
  support::TaskPool pool{support::threadsForTasks(threads, algorithms.size())};
  const auto cells = pool.map(algorithms.size(), [&](std::size_t index) {
    const auto start = Clock::now();
    rtl::Module design = designs::makeOperationNetwork(
        "fig5", {{rtl::OpKind::Add, 25}, {rtl::OpKind::Shl, 10}});
    lock::LockEngine engine{design, lock::PairTable::fixed()};
    support::Rng rng{seed};
    Cell cell;
    cell.report = lock::lockWithAlgorithm(engine, algorithms[index], kBudget, rng);
    cell.wallMs = elapsedMs(start);
    return cell;
  });
  for (std::size_t index = 0; index < algorithms.size(); ++index) {
    const std::string name{lock::algorithmName(algorithms[index])};
    rows.push_back({"fig5", name, "bits_used",
                    static_cast<double>(cells[index].report.bitsUsed), cells[index].wallMs});
    rows.push_back(
        {"fig5", name, "final_global_metric", cells[index].report.finalGlobalMetric, 0.0});
  }
}

// --- Fig. 6: mean SnapShot-RTL KPA per algorithm ---------------------------
//
// One task per (algorithm, benchmark) cell; cell i draws only from
// substream(i) of the section root, so the grid is bit-identical at every
// thread count (the engine's seeding convention — see support/task_pool.hpp).
// The whole grid is timed as one batch and recorded as the
// fig6_quick/wall_ms (or fig6_full/wall_ms) perf row that optimisation PRs
// track; per-algorithm quality rows carry no wall time of their own.

void runFig6(std::vector<Row>& rows, std::uint64_t seed, bool full, int threads) {
  attack::EvaluationConfig config;
  config.testLocks = full ? 10 : 1;
  config.keyBudgetFraction = 0.75;
  config.snapshot.relockRounds = full ? 1000 : 30;
  config.snapshot.relockBudgetFraction = config.keyBudgetFraction;
  config.snapshot.automl.folds = 3;
  config.threads = 1;  // grid cells are the outer parallelism level

  const std::vector<std::string> benchmarks =
      full ? designs::benchmarkNames() : std::vector<std::string>{"FIR", "SASC"};
  const std::vector<lock::Algorithm> algorithms{
      lock::Algorithm::AssureSerial, lock::Algorithm::Hra, lock::Algorithm::Era};
  const std::string benchConfig =
      support::join(benchmarks, "+") + (full ? " (paper-sized)" : " (quick)");

  // Build each benchmark once; tasks clone from the shared const module.
  std::vector<rtl::Module> originals;
  originals.reserve(benchmarks.size());
  for (const auto& name : benchmarks) originals.push_back(designs::makeBenchmark(name));

  const support::Rng root{seed + 100};
  // Construct the pool outside the timed region: the fig6 wall row tracks
  // grid execution, not worker spawn/join overhead.
  support::TaskPool pool{
      support::threadsForTasks(threads, algorithms.size() * benchmarks.size())};
  const auto start = Clock::now();
  const auto cells = pool.map(
      algorithms.size() * benchmarks.size(), [&](std::size_t index) {
        const lock::Algorithm algorithm = algorithms[index / benchmarks.size()];
        const std::size_t b = index % benchmarks.size();
        support::Rng cellRng = root.substream(index);
        return attack::evaluateBenchmark(originals[b], benchmarks[b], algorithm,
                                         lock::PairTable::fixed(), config, cellRng)
            .meanKpa;
      });
  const double gridWallMs = elapsedMs(start);

  for (std::size_t a = 0; a < algorithms.size(); ++a) {
    double sum = 0.0;
    for (std::size_t b = 0; b < benchmarks.size(); ++b) sum += cells[a * benchmarks.size() + b];
    rows.push_back({"fig6", std::string{lock::algorithmName(algorithms[a])} + " / " + benchConfig,
                    "mean_kpa_percent", sum / static_cast<double>(benchmarks.size()), 0.0});
  }
  rows.push_back({"perf", full ? "fig6_full" : "fig6_quick", "wall_ms", gridWallMs, gridWallMs});

  // Journal overhead: append one representative checkpoint row per grid
  // cell to a real journal (serialize + single write + flush, the campaign
  // engine's per-cell cost) and record the total.  Compare against the
  // wall_ms row above to verify journaling stays <5% of campaign wall.
  const std::string journalPath =
      (std::filesystem::temp_directory_path() / "rtlock_bench_journal.jsonl").string();
  std::filesystem::remove(journalPath);
  {
    campaign::CampaignIdentity identity;
    identity.designHash = support::fnv1a64Hex(benchConfig);
    identity.configHash = support::fnv1a64Hex(benchConfig + "/config");
    identity.design = "fig6";
    identity.config = benchConfig;
    campaign::Journal journal{journalPath, identity};
    const auto journalStart = Clock::now();
    for (std::size_t index = 0; index < cells.size(); ++index) {
      campaign::JournalRow row;
      row.id = {identity.designHash, "algo", index, identity.configHash};
      row.status = "ok";
      row.attempts = 1;
      row.wallMs = gridWallMs / static_cast<double>(cells.size());
      row.payload.set("mean_kpa_percent", cells[index]);
      row.payload.set("min_kpa_percent", cells[index]);
      row.payload.set("max_kpa_percent", cells[index]);
      row.payload.set("mean_key_bits", 48.0);
      row.payload.set("mean_global_metric", 29.289321881345245);
      row.payload.set("mean_restricted_metric", 100.0);
      journal.append(row);
    }
    const double journalWallMs = elapsedMs(journalStart);
    rows.push_back({"perf", full ? "fig6_full" : "fig6_quick", "journal_overhead_ms",
                    journalWallMs, journalWallMs});
  }
  std::filesystem::remove(journalPath);

  // Manifest/claim overhead: the multi-host coordination cost per grid cell
  // (manifest write + O_CREAT|O_EXCL claim + atomic done marker — what
  // `rtlock work` adds on top of journaling).  Compare against the wall_ms
  // row above to verify coordination stays <5% of campaign wall.
  const std::string manifestPath =
      (std::filesystem::temp_directory_path() / "rtlock_bench_campaign.manifest").string();
  std::filesystem::remove(manifestPath);
  std::filesystem::remove_all(manifestPath + ".claims");
  {
    campaign::Manifest manifest;
    manifest.identity.designHash = support::fnv1a64Hex(benchConfig);
    manifest.identity.configHash = support::fnv1a64Hex(benchConfig + "/config");
    manifest.identity.design = "fig6";
    manifest.identity.config = benchConfig;
    manifest.setup = benchConfig;
    for (std::size_t index = 0; index < cells.size(); ++index) {
      campaign::Cell cell;
      cell.id = {manifest.identity.designHash, "algo", index, manifest.identity.configHash};
      cell.label = "algo / cell " + std::to_string(index);
      manifest.cells.push_back(cell);
    }
    const auto manifestStart = Clock::now();
    campaign::writeManifest(manifestPath, manifest);
    campaign::ClaimBoard board{manifestPath, "bench-worker", 60000.0};
    for (std::size_t index = 0; index < cells.size(); ++index) {
      (void)board.tryClaim(index);
      board.markDone(index, "ok");
    }
    const double manifestWallMs = elapsedMs(manifestStart);
    rows.push_back({"perf", full ? "fig6_full" : "fig6_quick", "manifest_overhead_ms",
                    manifestWallMs, manifestWallMs});
  }
  std::filesystem::remove(manifestPath);
  std::filesystem::remove_all(manifestPath + ".claims");
}

// --- perf: chrono timings of the hot paths perf_microbench covers ----------

void runPerf(std::vector<Row>& rows, std::uint64_t seed) {
  {
    rtl::Module module = designs::makePlusNetwork(1024);
    lock::LockEngine engine{module, lock::PairTable::fixed()};
    support::Rng rng{seed};
    constexpr int kIterations = 2000;
    timedRow(rows, "perf", "plus_network_1024", "lock_undo_us_per_op", [&] {
      const auto start = Clock::now();
      for (int i = 0; i < kIterations; ++i) {
        const auto checkpoint = engine.checkpoint();
        (void)engine.lockRandomOp(rng);
        engine.undoTo(checkpoint);
      }
      return elapsedMs(start) * 1000.0 / kIterations;
    });
  }
  {
    rtl::Module module = designs::makePlusNetwork(1024);
    lock::LockEngine engine{module, lock::PairTable::fixed()};
    support::Rng rng{seed + 1};
    lock::assureRandomLock(engine, static_cast<int>(0.75 * engine.initialLockableOps()), rng);
    constexpr int kIterations = 50;
    timedRow(rows, "perf", "plus_network_1024 @75%", "extract_localities_ms", [&] {
      const auto start = Clock::now();
      for (int i = 0; i < kIterations; ++i) {
        if (attack::extractLocalities(module, {}).empty()) return -1.0;
      }
      return elapsedMs(start) / kIterations;
    });
  }
  {
    const rtl::Module module = designs::makeBenchmark("MD5");
    const std::string text = verilog::writeModule(module);
    constexpr int kIterations = 20;
    timedRow(rows, "perf", "MD5", "verilog_roundtrip_ms", [&] {
      const auto start = Clock::now();
      for (int i = 0; i < kIterations; ++i) {
        if (verilog::writeModule(verilog::parseModule(text)).empty()) return -1.0;
      }
      return elapsedMs(start) / kIterations;
    });
  }
  {
    const rtl::Module module = designs::makeBenchmark("SHA256");
    support::Rng rng{seed + 2};
    const auto blk = *module.findSignal("blk");
    const auto digest = *module.findSignal("digest");
    // Production backend: compiled bytecode tape (this is the headline
    // simulate_cycle_us row that optimisation PRs track).
    {
      sim::CompiledSim compiled{module};
      constexpr int kIterations = 2000;
      timedRow(rows, "perf", "SHA256", "simulate_cycle_us", [&] {
        const auto start = Clock::now();
        for (int i = 0; i < kIterations; ++i) {
          compiled.setValue(blk, sim::BitVector::random(32, rng));
          compiled.settle();
          (void)compiled.value(digest);
        }
        return elapsedMs(start) * 1000.0 / kIterations;
      });
    }
    // Reference interpreter, for the backend-vs-backend trajectory.
    {
      sim::Evaluator eval{module};
      constexpr int kIterations = 200;
      timedRow(rows, "perf", "SHA256 (interpreter)", "simulate_cycle_us", [&] {
        const auto start = Clock::now();
        for (int i = 0; i < kIterations; ++i) {
          eval.setValue(blk, sim::BitVector::random(32, rng));
          eval.settle();
          (void)eval.value(digest);
        }
        return elapsedMs(start) * 1000.0 / kIterations;
      });
    }
  }
  {
    // Corruption sweep: compile a locked SHA256 pair once, then measure
    // output corruption under many hypothesis keys (the oracle-guided
    // attack's hot loop shape).  The headline row batches every key through
    // the bit-sliced backend — outputCorruptionBatch packs the key x vector
    // measurements 64 per tape pass — while the scalar row keeps the old
    // per-key compiled-tape loop as the oracle trajectory.  Both rows score
    // identical per-key values: the batch draws one shared stimulus set,
    // matching the old loop's fresh Rng{seed + 6} per key.
    const rtl::Module original = designs::makeBenchmark("SHA256");
    rtl::Module locked = original.clone();
    lock::LockEngine engine{locked, lock::PairTable::fixed()};
    support::Rng lockRng{seed + 4};
    lock::assureRandomLock(engine, engine.initialLockableOps() / 2, lockRng);
    sim::EquivalenceOptions options;
    options.vectors = 4;
    options.cyclesPerVector = 4;
    constexpr int kKeys = 20;
    std::vector<sim::BitVector> keys;
    keys.reserve(kKeys);
    support::Rng rng{seed + 5};
    for (int i = 0; i < kKeys; ++i) {
      keys.push_back(sim::BitVector::random(locked.keyWidth(), rng));
    }
    constexpr int kIterations = 20;  // one batch is ~0.1 ms; amortise the timer
    {
      sim::Harness harness{original, locked, sim::SimBackend::Sliced};
      timedRow(rows, "perf", "SHA256 locked@50%", "corruption_sweep_ms", [&] {
        const auto start = Clock::now();
        for (int i = 0; i < kIterations; ++i) {
          support::Rng stimulusRng{seed + 6};
          if (harness.outputCorruptionBatch(keys, options, stimulusRng).size() != kKeys) {
            return -1.0;
          }
        }
        return elapsedMs(start) / (kKeys * kIterations);
      });
    }
    {
      sim::Harness harness{original, locked, sim::SimBackend::Compiled};
      timedRow(rows, "perf", "SHA256 locked@50%", "scalar_corruption_sweep_ms", [&] {
        const auto start = Clock::now();
        for (int i = 0; i < kIterations; ++i) {
          for (const sim::BitVector& key : keys) {
            support::Rng stimulusRng{seed + 6};
            (void)harness.outputCorruption(key, options, stimulusRng);
          }
        }
        return elapsedMs(start) / (kKeys * kIterations);
      });
    }
  }
  {
    // Sliced-attack row: the same batched sweep shape on an ASSURE-locked
    // FIR at the paper's 75 % budget — the design/keyspace the oracle-guided
    // attack actually hammers.  More keys than SHA256's sweep so several
    // 64-lane chunks run per measurement.
    const rtl::Module original = designs::makeBenchmark("FIR");
    rtl::Module locked = original.clone();
    lock::LockEngine engine{locked, lock::PairTable::fixed()};
    support::Rng lockRng{seed + 7};
    lock::assureRandomLock(
        engine, static_cast<int>(0.75 * engine.initialLockableOps()), lockRng);
    sim::Harness harness{original, locked, sim::SimBackend::Sliced};
    sim::EquivalenceOptions options;
    options.vectors = 4;
    options.cyclesPerVector = 4;
    constexpr int kKeys = 64;
    std::vector<sim::BitVector> keys;
    keys.reserve(kKeys);
    support::Rng rng{seed + 11};
    for (int i = 0; i < kKeys; ++i) {
      keys.push_back(sim::BitVector::random(locked.keyWidth(), rng));
    }
    constexpr int kIterations = 20;
    timedRow(rows, "perf", "FIR locked@75%", "sliced_corruption_sweep_ms", [&] {
      const auto start = Clock::now();
      for (int i = 0; i < kIterations; ++i) {
        support::Rng stimulusRng{seed + 12};
        if (harness.outputCorruptionBatch(keys, options, stimulusRng).size() != kKeys) {
          return -1.0;
        }
      }
      return elapsedMs(start) / (kKeys * kIterations);
    });
  }
  {
    // Static analysis cost: full verifier + security lint (key-influence
    // fixpoint included) over a locked SHA256 — the `rtlock lint` hot path
    // and the price debug builds pay per RTLOCK_DEBUG_VERIFY_IR call site.
    const rtl::Module original = designs::makeBenchmark("SHA256");
    rtl::Module locked = original.clone();
    lock::LockEngine engine{locked, lock::PairTable::fixed()};
    support::Rng lockRng{seed + 4};
    lock::assureRandomLock(engine, engine.initialLockableOps() / 2, lockRng);
    constexpr int kRepeats = 10;
    timedRow(rows, "perf", "SHA256 locked@50%", "lint_ms", [&] {
      const auto start = Clock::now();
      for (int i = 0; i < kRepeats; ++i) {
        const auto findings = analysis::verify(locked);
        const auto report = analysis::lintLocked(locked);
        if (!findings.empty() || report.summary.keyWidth != locked.keyWidth()) {
          throw support::Error{"lint bench: unexpected analysis result"};
        }
      }
      return elapsedMs(start) / kRepeats;
    });
  }
  {
    // End-to-end SnapShot attack (the PR-4 headline row): one paper-sized
    // attack — 1000 relock rounds (the paper's training setup), locality
    // harvesting, auto-ml selection and per-bit prediction — against an
    // ASSURE-locked FIR.  This is the attack-pipeline cost that dominates
    // experiment wall time now that simulation is cheap; it exercises the
    // incremental harvester, the flat ML data plane and the engine's
    // lock/undo hot loop together.
    rtl::Module locked = designs::makeBenchmark("FIR");
    lock::LockEngine engine{locked, lock::PairTable::fixed()};
    support::Rng lockRng{seed + 7};
    lock::assureRandomLock(
        engine, static_cast<int>(0.75 * engine.initialLockableOps()), lockRng);
    const std::vector<lock::LockRecord> truth = engine.records();
    attack::SnapshotConfig config;
    config.relockRounds = 1000;
    config.automl.folds = 3;
    support::Rng rng{seed + 8};
    constexpr int kIterations = 3;
    timedRow(rows, "perf", "FIR locked@75%", "snapshot_attack_ms", [&] {
      const auto start = Clock::now();
      for (int i = 0; i < kIterations; ++i) {
        if (attack::snapshotAttack(locked, truth, lock::PairTable::fixed(), config, rng)
                .keyBits == 0) {
          return -1.0;
        }
      }
      return elapsedMs(start) / kIterations;
    });
  }
  {
    // Auto-ml portfolio selection on a locality-shaped training set (the
    // attack's step-3 cost in isolation).
    support::Rng dataRng{seed + 9};
    ml::Dataset training{2};
    for (int i = 0; i < 5000; ++i) {
      const auto c1 = static_cast<double>(dataRng.below(8));
      const auto c2 = static_cast<double>(dataRng.below(8));
      training.add({c1, c2}, dataRng.chance(c1 > c2 ? 0.9 : 0.3) ? 1 : 0);
    }
    ml::AutoMlConfig config;
    config.folds = 3;
    constexpr int kIterations = 3;
    timedRow(rows, "perf", "locality_rows_5000", "automl_fit_ms", [&] {
      const auto start = Clock::now();
      for (int i = 0; i < kIterations; ++i) {
        support::Rng rng{seed + 10};
        if (ml::autoSelect(training, config, rng).model == nullptr) return -1.0;
      }
      return elapsedMs(start) / kIterations;
    });
  }
  {
    constexpr int kIterations = 5;
    timedRow(rows, "perf", "era plus_network_256", "era_lock_ms", [&] {
      double totalMs = 0.0;
      for (int i = 0; i < kIterations; ++i) {
        rtl::Module module = designs::makePlusNetwork(256);
        lock::LockEngine engine{module, lock::PairTable::fixed()};
        support::Rng rng{seed + 3};
        const auto start = Clock::now();
        (void)lock::eraLock(engine, engine.initialLockableOps(), rng);
        totalMs += elapsedMs(start);
      }
      return totalMs / kIterations;
    });
  }
}

// --- service: session-cache amortisation and serve throughput --------------
//
// The serve PR's headline: a warm SessionCache fetch skips the parse +
// verify + two-backend compile + lint pipeline entirely, so repeated work
// on the same design (CLI re-runs, service traffic) pays it once.  The
// speedup row is the cold build cost over the warm fetch cost; the serve
// smoke row drives the real daemon over loopback TCP end to end.

/// One GET /healthz round-trip against a local rtlock serve daemon.
bool healthzRoundTrip(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) != 0) {
    ::close(fd);
    return false;
  }
  const std::string request = "GET /healthz HTTP/1.1\r\nHost: bench\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string reply;
  char buffer[2048];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    reply.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return reply.find(" 200 OK") != std::string::npos;
}

void runService(std::vector<Row>& rows) {
  {
    const rtl::Module module = designs::makeBenchmark("SHA256");
    const std::string source = verilog::writeModule(module);
    const service::SessionOptions options;
    // Cold: a fresh cache pays the full build pipeline once.
    const auto coldStart = Clock::now();
    service::SessionCache coldCache;
    (void)coldCache.fetch(source, options);
    const double coldMs = elapsedMs(coldStart);
    // Warm: hash the source, touch the LRU entry, hand back the pin.
    service::SessionCache cache;
    (void)cache.fetch(source, options);
    constexpr int kIterations = 500;
    const auto warmStart = Clock::now();
    for (int i = 0; i < kIterations; ++i) {
      if (!cache.fetch(source, options).hit) {
        throw support::Error{"session bench: warm fetch missed"};
      }
    }
    const double warmMs = elapsedMs(warmStart) / kIterations;
    rows.push_back({"perf", "SHA256", "session_cold_build_ms", coldMs, coldMs});
    rows.push_back(
        {"perf", "SHA256", "session_warm_speedup", coldMs / std::max(warmMs, 1e-6), 0.0});
  }
  {
    // Serve smoke: a self-draining daemon on an ephemeral loopback port,
    // hammered with sequential /healthz round-trips.
    constexpr int kRequests = 32;
    service::ServeOptions options;
    options.threads = 1;
    options.maxRequests = kRequests;
    service::Server server{options};
    const int port = server.port();
    std::thread runner{[&server] { (void)server.run(); }};
    const auto start = Clock::now();
    int ok = 0;
    for (int i = 0; i < kRequests; ++i) ok += healthzRoundTrip(port) ? 1 : 0;
    runner.join();
    const double wallMs = elapsedMs(start);
    if (ok != kRequests) {
      throw support::Error{"serve smoke: " + std::to_string(kRequests - ok) +
                           " request(s) failed"};
    }
    rows.push_back({"perf", "serve /healthz x" + std::to_string(kRequests), "requests_per_s",
                    kRequests * 1000.0 / wallMs, wallMs});
  }
}

// --- output ----------------------------------------------------------------
//
// String escaping comes from support::jsonEscape — the one implementation
// behind the CLI reports and this baseline, so the documents can never drift
// in how they encode strings.
using support::jsonEscape;

// --- quality gate -----------------------------------------------------------
//
// --check=PATH re-reads a committed baseline JSON and compares every
// non-`perf` row (the seed-deterministic quality values) against this run.
// Quality rows are bit-identical across thread counts and machines, so any
// drift is a real behaviour change — the CI job fails on it.  The parser
// handles exactly the schema writeJson emits (one row object per line).

struct ParsedRow {
  std::string bench;
  std::string config;
  std::string metric;
  std::string value;  // formatted text, compared verbatim
};

std::string extractField(const std::string& line, const std::string& key, bool quoted) {
  const std::string tag = "\"" + key + "\": ";
  const std::size_t start = line.find(tag);
  if (start == std::string::npos) throw support::Error("baseline row misses key " + key);
  std::size_t begin = start + tag.size();
  std::size_t end;
  if (quoted) {
    begin += 1;  // opening quote
    end = line.find('"', begin);
    while (end != std::string::npos && line[end - 1] == '\\') end = line.find('"', end + 1);
  } else {
    end = line.find_first_of(",}", begin);
  }
  if (end == std::string::npos) throw support::Error("malformed baseline row: " + line);
  return line.substr(begin, end - begin);
}

std::vector<ParsedRow> parseBaseline(const std::string& path) {
  std::ifstream file{path};
  if (!file) throw support::Error("cannot open committed baseline " + path);
  std::vector<ParsedRow> rows;
  std::string line;
  while (std::getline(file, line)) {
    if (line.find("\"bench\": ") == std::string::npos) continue;
    rows.push_back(ParsedRow{extractField(line, "bench", true), extractField(line, "config", true),
                             extractField(line, "metric", true),
                             extractField(line, "value", false)});
  }
  if (rows.empty()) throw support::Error("no rows found in committed baseline " + path);
  return rows;
}

/// Returns the number of drifting/missing quality rows (0 = gate passes).
int checkAgainstBaseline(const std::vector<Row>& rows, const std::string& path) {
  const std::vector<ParsedRow> committed = parseBaseline(path);
  std::map<std::string, std::string> committedValues;
  for (const ParsedRow& row : committed) {
    if (row.bench == "perf") continue;  // timings are machine-dependent
    committedValues[row.bench + " | " + row.config + " | " + row.metric] = row.value;
  }

  int failures = 0;
  std::map<std::string, std::string> currentValues;
  for (const Row& row : rows) {
    if (row.bench == "perf") continue;
    currentValues[row.bench + " | " + row.config + " | " + row.metric] =
        support::formatDouble(row.value, 4);
  }
  for (const auto& [key, value] : committedValues) {
    const auto it = currentValues.find(key);
    if (it == currentValues.end()) {
      std::cout << "quality gate: row disappeared: " << key << "\n";
      ++failures;
    } else if (it->second != value) {
      std::cout << "quality gate: DRIFT in " << key << ": committed " << value << ", got "
                << it->second << "\n";
      ++failures;
    }
  }
  for (const auto& [key, value] : currentValues) {
    if (committedValues.find(key) == committedValues.end()) {
      std::cout << "quality gate: new uncommitted quality row: " << key << " = " << value
                << " (regenerate the baseline)\n";
      ++failures;
    }
  }
  if (failures == 0) {
    std::cout << "quality gate: all " << committedValues.size()
              << " quality rows match the committed baseline\n";
  }
  return failures;
}

void writeJson(std::ostream& out, const std::vector<Row>& rows, std::uint64_t seed) {
  out << "{\n  \"schema\": \"rtlock-bench-baseline/v1\",\n  \"seed\": " << seed
      << ",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    out << "    {\"bench\": \"" << jsonEscape(row.bench) << "\", \"config\": \""
        << jsonEscape(row.config) << "\", \"metric\": \"" << jsonEscape(row.metric)
        << "\", \"value\": " << support::formatDouble(row.value, 4)
        << ", \"wall_ms\": " << support::formatDouble(row.wallMs, 2) << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  return rtlock::bench::runBench([&] {
    const support::CliArgs args(argc, argv,
                                {"seed", "json", "out", "full", "csv", "threads", "check"});
    const std::uint64_t seed = args.getU64("seed", 1);
    const bool json = args.getBool("json", false);
    const bool full = args.getBool("full", false);
    const bool csv = args.getBool("csv", false);
    const int threads = rtlock::bench::requestedThreads(args);
    const std::string outPath = args.get("out", "BENCH_baseline.json");
    const std::string checkPath = args.get("check", "");

    rtlock::bench::banner("baseline runner — perf/quality trajectory seed",
                          "Fig. 4/5/6 headline numbers + hot-path timings, fixed seeds",
                          "deterministic values per (seed, config); timings machine-dependent");

    std::vector<Row> rows;
    const auto start = Clock::now();
    runFig4(rows, seed, threads);
    runFig5(rows, seed, threads);
    runFig6(rows, seed, full, threads);
    runPerf(rows, seed);
    runService(rows);

    support::Table table{{"bench", "config", "metric", "value", "wall_ms"}};
    for (const Row& row : rows) {
      table.addRow({row.bench, row.config, row.metric, support::formatDouble(row.value, 4),
                    support::formatDouble(row.wallMs, 2)});
    }
    rtlock::bench::emit(table, csv);
    std::cout << "\n" << rows.size() << " metric rows in "
              << support::formatDouble(elapsedMs(start), 0) << " ms\n";

    if (json) {
      std::ofstream file{outPath};
      if (!file) throw support::Error("cannot open " + outPath + " for writing");
      writeJson(file, rows, seed);
      std::cout << "wrote " << outPath << "\n";
    }

    if (!checkPath.empty() && checkAgainstBaseline(rows, checkPath) != 0) {
      throw support::Error("quality gate failed against " + checkPath);
    }
  });
}
