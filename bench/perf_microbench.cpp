// Performance microbenchmarks (google-benchmark): throughput of the pieces
// that dominate experiment wall-clock — locking, undo, locality extraction,
// Verilog parsing/writing, simulation, and classifier training.
#include <benchmark/benchmark.h>

#include "attack/locality.hpp"
#include "core/algorithms.hpp"
#include "designs/networks.hpp"
#include "designs/registry.hpp"
#include "ml/automl.hpp"
#include "sim/compiled_sim.hpp"
#include "sim/compiler.hpp"
#include "sim/evaluator.hpp"
#include "sim/harness.hpp"
#include "verilog/parser.hpp"
#include "verilog/writer.hpp"

namespace {

using namespace rtlock;

void BM_LockRandomOp(benchmark::State& state) {
  rtl::Module module = designs::makePlusNetwork(static_cast<int>(state.range(0)));
  lock::LockEngine engine{module, lock::PairTable::fixed()};
  support::Rng rng{1};
  for (auto _ : state) {
    const auto checkpoint = engine.checkpoint();
    benchmark::DoNotOptimize(engine.lockRandomOp(rng));
    engine.undoTo(checkpoint);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LockRandomOp)->Arg(128)->Arg(1024)->Arg(2046);

void BM_RelockSession(benchmark::State& state) {
  // One attack training round: 75% relock + extraction + undo.
  rtl::Module module = designs::makePlusNetwork(static_cast<int>(state.range(0)));
  lock::LockEngine engine{module, lock::PairTable::fixed()};
  support::Rng rng{2};
  const int budget = static_cast<int>(0.75 * engine.initialLockableOps());
  for (auto _ : state) {
    const auto checkpoint = engine.checkpoint();
    lock::assureRandomLock(engine, budget, rng);
    benchmark::DoNotOptimize(attack::extractLocalities(module, {}));
    engine.undoTo(checkpoint);
  }
  state.SetItemsProcessed(state.iterations() * budget);
}
BENCHMARK(BM_RelockSession)->Arg(128)->Arg(1024);

void BM_EraLock(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    rtl::Module module = designs::makePlusNetwork(static_cast<int>(state.range(0)));
    lock::LockEngine engine{module, lock::PairTable::fixed()};
    support::Rng rng{3};
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        lock::eraLock(engine, engine.initialLockableOps(), rng).bitsUsed);
  }
}
BENCHMARK(BM_EraLock)->Arg(256)->Arg(1024)->Iterations(20);

void BM_HraLock(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    rtl::Module module = designs::makeBenchmark("SHA256");
    lock::LockEngine engine{module, lock::PairTable::fixed()};
    support::Rng rng{4};
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        lock::hraLock(engine, engine.initialLockableOps() / 2, rng).bitsUsed);
  }
}
BENCHMARK(BM_HraLock)->Iterations(20);

void BM_ExtractLocalities(benchmark::State& state) {
  rtl::Module module = designs::makePlusNetwork(static_cast<int>(state.range(0)));
  lock::LockEngine engine{module, lock::PairTable::fixed()};
  support::Rng rng{5};
  lock::assureRandomLock(engine, static_cast<int>(0.75 * engine.initialLockableOps()), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(attack::extractLocalities(module, {}));
  }
}
BENCHMARK(BM_ExtractLocalities)->Arg(128)->Arg(1024)->Arg(2046);

void BM_VerilogRoundTrip(benchmark::State& state) {
  const rtl::Module module = designs::makeBenchmark("MD5");
  const std::string text = verilog::writeModule(module);
  for (auto _ : state) {
    benchmark::DoNotOptimize(verilog::writeModule(verilog::parseModule(text)));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_VerilogRoundTrip);

void BM_SimulateCycle(benchmark::State& state) {
  const rtl::Module module = designs::makeBenchmark("SHA256");
  sim::Evaluator eval{module};
  support::Rng rng{6};
  const auto blk = *module.findSignal("blk");
  for (auto _ : state) {
    eval.setValue(blk, sim::BitVector::random(32, rng));
    eval.settle();
    benchmark::DoNotOptimize(eval.value(*module.findSignal("digest")));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulateCycle);

void BM_CompiledSimulateCycle(benchmark::State& state) {
  // Same cycle as BM_SimulateCycle on the compiled bytecode backend.
  const rtl::Module module = designs::makeBenchmark("SHA256");
  sim::CompiledSim compiled{module};
  support::Rng rng{6};
  const auto blk = *module.findSignal("blk");
  const auto digest = *module.findSignal("digest");
  for (auto _ : state) {
    compiled.setValue(blk, sim::BitVector::random(32, rng));
    compiled.settle();
    benchmark::DoNotOptimize(compiled.value(digest));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CompiledSimulateCycle);

void BM_CompileProgram(benchmark::State& state) {
  // One-off cost the compiled backend pays per (module, lock) combination.
  const rtl::Module module = designs::makeBenchmark("SHA256");
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::Compiler::compile(module).instructionCount());
  }
}
BENCHMARK(BM_CompileProgram)->Iterations(50);

void BM_CorruptionSweep(benchmark::State& state) {
  // Oracle-attack hot loop: one compiled pair, many hypothesis keys.
  const rtl::Module original = designs::makeBenchmark("SHA256");
  rtl::Module locked = original.clone();
  lock::LockEngine engine{locked, lock::PairTable::fixed()};
  support::Rng lockRng{9};
  lock::assureRandomLock(engine, engine.initialLockableOps() / 2, lockRng);
  sim::Harness harness{original, locked};
  sim::EquivalenceOptions options;
  options.vectors = 4;
  support::Rng keyRng{10};
  for (auto _ : state) {
    support::Rng stimulusRng{11};
    benchmark::DoNotOptimize(harness.outputCorruption(
        sim::BitVector::random(locked.keyWidth(), keyRng), options, stimulusRng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CorruptionSweep);

void BM_BitVectorNarrowOps(benchmark::State& state) {
  // Small-buffer fast path: width <= 64 vectors never touch the heap.
  const int width = static_cast<int>(state.range(0));
  support::Rng rng{12};
  const sim::BitVector a = sim::BitVector::random(width, rng);
  const sim::BitVector b = sim::BitVector::random(width, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::BitVector::bitXor(sim::BitVector::add(a, b, width), a, width));
  }
  state.SetItemsProcessed(2 * state.iterations());
}
BENCHMARK(BM_BitVectorNarrowOps)->Arg(8)->Arg(32)->Arg(64)->Arg(128);

void BM_AutoMlSelect(benchmark::State& state) {
  support::Rng rng{7};
  ml::Dataset data{2};
  for (int i = 0; i < 20000; ++i) {
    const auto c1 = static_cast<double>(rng.below(8));
    const auto c2 = static_cast<double>(rng.below(8));
    data.add({c1, c2}, rng.chance(c1 > c2 ? 0.8 : 0.3) ? 1 : 0);
  }
  ml::AutoMlConfig config;
  config.folds = 3;
  for (auto _ : state) {
    support::Rng selectRng{8};
    benchmark::DoNotOptimize(ml::autoSelect(data, config, selectRng).bestCvAccuracy);
  }
}
BENCHMARK(BM_AutoMlSelect)->Iterations(5);

}  // namespace

BENCHMARK_MAIN();
