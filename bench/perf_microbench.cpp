// Performance microbenchmarks (google-benchmark): throughput of the pieces
// that dominate experiment wall-clock — locking, undo, locality extraction,
// Verilog parsing/writing, simulation, and classifier training.
#include <benchmark/benchmark.h>

#include "attack/locality.hpp"
#include "core/algorithms.hpp"
#include "designs/networks.hpp"
#include "designs/registry.hpp"
#include "ml/automl.hpp"
#include "sim/evaluator.hpp"
#include "verilog/parser.hpp"
#include "verilog/writer.hpp"

namespace {

using namespace rtlock;

void BM_LockRandomOp(benchmark::State& state) {
  rtl::Module module = designs::makePlusNetwork(static_cast<int>(state.range(0)));
  lock::LockEngine engine{module, lock::PairTable::fixed()};
  support::Rng rng{1};
  for (auto _ : state) {
    const auto checkpoint = engine.checkpoint();
    benchmark::DoNotOptimize(engine.lockRandomOp(rng));
    engine.undoTo(checkpoint);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LockRandomOp)->Arg(128)->Arg(1024)->Arg(2046);

void BM_RelockSession(benchmark::State& state) {
  // One attack training round: 75% relock + extraction + undo.
  rtl::Module module = designs::makePlusNetwork(static_cast<int>(state.range(0)));
  lock::LockEngine engine{module, lock::PairTable::fixed()};
  support::Rng rng{2};
  const int budget = static_cast<int>(0.75 * engine.initialLockableOps());
  for (auto _ : state) {
    const auto checkpoint = engine.checkpoint();
    lock::assureRandomLock(engine, budget, rng);
    benchmark::DoNotOptimize(attack::extractLocalities(module, {}));
    engine.undoTo(checkpoint);
  }
  state.SetItemsProcessed(state.iterations() * budget);
}
BENCHMARK(BM_RelockSession)->Arg(128)->Arg(1024);

void BM_EraLock(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    rtl::Module module = designs::makePlusNetwork(static_cast<int>(state.range(0)));
    lock::LockEngine engine{module, lock::PairTable::fixed()};
    support::Rng rng{3};
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        lock::eraLock(engine, engine.initialLockableOps(), rng).bitsUsed);
  }
}
BENCHMARK(BM_EraLock)->Arg(256)->Arg(1024)->Iterations(20);

void BM_HraLock(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    rtl::Module module = designs::makeBenchmark("SHA256");
    lock::LockEngine engine{module, lock::PairTable::fixed()};
    support::Rng rng{4};
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        lock::hraLock(engine, engine.initialLockableOps() / 2, rng).bitsUsed);
  }
}
BENCHMARK(BM_HraLock)->Iterations(20);

void BM_ExtractLocalities(benchmark::State& state) {
  rtl::Module module = designs::makePlusNetwork(static_cast<int>(state.range(0)));
  lock::LockEngine engine{module, lock::PairTable::fixed()};
  support::Rng rng{5};
  lock::assureRandomLock(engine, static_cast<int>(0.75 * engine.initialLockableOps()), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(attack::extractLocalities(module, {}));
  }
}
BENCHMARK(BM_ExtractLocalities)->Arg(128)->Arg(1024)->Arg(2046);

void BM_VerilogRoundTrip(benchmark::State& state) {
  const rtl::Module module = designs::makeBenchmark("MD5");
  const std::string text = verilog::writeModule(module);
  for (auto _ : state) {
    benchmark::DoNotOptimize(verilog::writeModule(verilog::parseModule(text)));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_VerilogRoundTrip);

void BM_SimulateCycle(benchmark::State& state) {
  const rtl::Module module = designs::makeBenchmark("SHA256");
  sim::Evaluator eval{module};
  support::Rng rng{6};
  const auto blk = *module.findSignal("blk");
  for (auto _ : state) {
    eval.setValue(blk, sim::BitVector::random(32, rng));
    eval.settle();
    benchmark::DoNotOptimize(eval.value(*module.findSignal("digest")));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulateCycle);

void BM_AutoMlSelect(benchmark::State& state) {
  support::Rng rng{7};
  ml::Dataset data{2};
  for (int i = 0; i < 20000; ++i) {
    const auto c1 = static_cast<double>(rng.below(8));
    const auto c2 = static_cast<double>(rng.below(8));
    data.add({c1, c2}, rng.chance(c1 > c2 ? 0.8 : 0.3) ? 1 : 0);
  }
  ml::AutoMlConfig config;
  config.folds = 3;
  for (auto _ : state) {
    support::Rng selectRng{8};
    benchmark::DoNotOptimize(ml::autoSelect(data, config, selectRng).bestCvAccuracy);
  }
}
BENCHMARK(BM_AutoMlSelect)->Iterations(5);

}  // namespace

BENCHMARK_MAIN();
