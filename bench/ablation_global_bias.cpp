// Sec. 5.1 limitations — "is there a 'global bias' among designs?  If so,
// this bias could help determine the correct function of locked designs.
// The metric in Section 4.1 can extract the initial distance for selected
// designs by considering the distance between the initial distribution and
// the optimal one."
//
// The bench computes exactly that: per benchmark, the initial ODT magnitude
// vector, its Euclidean distance to the balanced optimum, the distance
// normalized by operation count (comparable across design sizes), and the
// dominant imbalanced pair.  Designs cluster by domain: DSP leans on (+,-)
// and (*,/), crypto on (^,~^) and (&,|) — the global bias the paper
// anticipates.
#include "common.hpp"
#include "core/engine.hpp"
#include "core/metric.hpp"
#include "designs/registry.hpp"

int main(int argc, char** argv) {
  using namespace rtlock;
  return bench::runBench([&] {
    const support::CliArgs args(argc, argv, {"csv"});
    const bool csv = args.getBool("csv", false);

    bench::banner("Global bias across benchmark designs",
                  "Sisejkovic et al., DAC'22, Sec. 5.1 (limitations & opportunities)",
                  "nonzero initial distance everywhere except N_1023; domain-typical "
                  "dominant pairs");

    const auto& pairs = lock::PairTable::fixed().pairs();
    support::Table table{{"benchmark", "ops", "initial distance d(v_i, v_o)",
                          "bias per op", "dominant pair", "dominant |ODT|"}};

    for (const auto& name : designs::benchmarkNames()) {
      rtl::Module module = designs::makeBenchmark(name);
      lock::LockEngine engine{module, lock::PairTable::fixed()};
      const std::vector<int> magnitudes = engine.initialMagnitudes();
      const lock::PairMask all(magnitudes.size(), true);
      const double distance = lock::modifiedEuclidean(magnitudes, all);

      std::size_t dominant = 0;
      for (std::size_t i = 1; i < magnitudes.size(); ++i) {
        if (magnitudes[i] > magnitudes[dominant]) dominant = i;
      }
      const std::string dominantPair =
          "(" + std::string{rtl::opName(pairs[dominant].first)} + "," +
          std::string{rtl::opName(pairs[dominant].second)} + ")";

      const int ops = engine.initialLockableOps();
      table.addRow({name, std::to_string(ops), support::formatDouble(distance, 2),
                    support::formatDouble(ops == 0 ? 0.0 : distance / ops, 3), dominantPair,
                    std::to_string(magnitudes[dominant])});
    }
    bench::emit(table, csv);
  });
}
