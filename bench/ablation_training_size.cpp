// Training-set size sensitivity (Sec. 5 attack setup uses 1000 relocks per
// test sample; this ablation shows how many the attack actually needs).
//
// Expected shape: KPA against imbalanced ASSURE locking saturates after a
// few dozen relock rounds (the locality space is tiny), while KPA against
// ERA stays at ~50 % regardless of training volume — more data cannot create
// signal that the balanced distribution does not carry.
#include "attack/pipeline.hpp"
#include "common.hpp"
#include "designs/registry.hpp"

int main(int argc, char** argv) {
  using namespace rtlock;
  return bench::runBench([&] {
    const support::CliArgs args(argc, argv, {"seed", "csv", "samples", "benchmark", "threads"});
    const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
    const bool csv = args.getBool("csv", false);
    const std::string benchmarkName = args.get("benchmark", "FIR");

    bench::banner("Training-set size sweep",
                  "Sisejkovic et al., DAC'22, Sec. 5 (attack setup: 1000 relocks)",
                  "ASSURE KPA saturates quickly; ERA flat at ~50% for any volume");

    const rtl::Module original = designs::makeBenchmark(benchmarkName);
    support::Table table{
        {"relock rounds", "training rows", "ASSURE KPA%", "ERA KPA%"}};

    // One task per round-count cell, seeded from substream(cell index); the
    // two algorithm evaluations inside a cell share the cell's stream
    // serially, so the sweep is bit-identical at any thread count.
    const std::vector<int> roundGrid{5, 10, 25, 50, 100, 200};
    struct Cell {
      attack::EvaluationResult assure;
      attack::EvaluationResult era;
    };
    const support::Rng root{seed};
    support::TaskPool pool{
        support::threadsForTasks(bench::requestedThreads(args), roundGrid.size())};
    const auto cells = pool.map(roundGrid.size(), [&](std::size_t index) {
      attack::EvaluationConfig config;
      config.testLocks = static_cast<int>(args.getInt("samples", 2));
      config.snapshot.relockRounds = roundGrid[index];
      config.snapshot.automl.folds = 2;
      config.threads = 1;  // sweep cells are the outer parallelism level

      support::Rng rng = root.substream(index);
      Cell cell;
      cell.assure = attack::evaluateBenchmark(original, benchmarkName,
                                              lock::Algorithm::AssureSerial,
                                              lock::PairTable::fixed(), config, rng);
      cell.era = attack::evaluateBenchmark(original, benchmarkName, lock::Algorithm::Era,
                                           lock::PairTable::fixed(), config, rng);
      return cell;
    });

    for (std::size_t index = 0; index < roundGrid.size(); ++index) {
      // Rows per round ~ relock budget; report the product as training size.
      const auto rows =
          static_cast<long long>(roundGrid[index] * cells[index].assure.meanKeyBits);
      table.addRow({std::to_string(roundGrid[index]), std::to_string(rows),
                    support::formatDouble(cells[index].assure.meanKpa, 2),
                    support::formatDouble(cells[index].era.meanKpa, 2)});
    }
    bench::emit(table, csv);
  });
}
