// Sec. 5.1 — "when it comes to ML-driven attacks, half measures are not
// effective.  Data-driven approaches can exploit even the slightest
// imbalance."
//
// The bench sweeps the key budget from 10 % to 100 % on an imbalanced design
// and reports KPA for ASSURE, HRA and ERA.  Expected shape: ASSURE stays
// highly vulnerable at every partial budget; HRA improves only gradually
// (residual imbalance remains exploitable until the budget suffices to
// balance); ERA is at random guess everywhere because it overruns the budget
// to reach balance.
#include "attack/pipeline.hpp"
#include "common.hpp"
#include "designs/registry.hpp"

int main(int argc, char** argv) {
  using namespace rtlock;
  return bench::runBench([&] {
    const support::CliArgs args(argc, argv,
                                {"seed", "csv", "samples", "relocks", "benchmark", "threads"});
    const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
    const bool csv = args.getBool("csv", false);
    const std::string benchmarkName = args.get("benchmark", "FIR");

    attack::EvaluationConfig config;
    config.testLocks = static_cast<int>(args.getInt("samples", 2));
    config.snapshot.relockRounds = static_cast<int>(args.getInt("relocks", 50));
    config.snapshot.automl.folds = 2;
    config.threads = 1;  // sweep cells are the outer parallelism level

    bench::banner("Key-budget sweep — the 'half measures' claim",
                  "Sisejkovic et al., DAC'22, Sec. 5.1 (lessons learned)",
                  "ASSURE/HRA exploitable at every partial budget; ERA ~50% throughout");

    const rtl::Module original = designs::makeBenchmark(benchmarkName);
    support::Table table{{"budget %", "ASSURE KPA%", "HRA KPA%", "HRA M^g", "ERA KPA%",
                          "ERA bits used"}};

    // One task per (budget, algorithm) cell; cell i draws only from
    // substream(i) of the master seed, so the sweep is bit-identical at any
    // thread count.
    const std::vector<int> budgetGrid{10, 25, 50, 75, 90, 100};
    const std::vector<lock::Algorithm> algorithms{
        lock::Algorithm::AssureSerial, lock::Algorithm::Hra, lock::Algorithm::Era};
    const support::Rng root{seed};
    support::TaskPool pool{support::threadsForTasks(bench::requestedThreads(args),
                                                    budgetGrid.size() * algorithms.size())};
    const auto cells = pool.map(
        budgetGrid.size() * algorithms.size(), [&](std::size_t index) {
          attack::EvaluationConfig cellConfig = config;
          cellConfig.keyBudgetFraction = budgetGrid[index / algorithms.size()] / 100.0;
          cellConfig.snapshot.relockBudgetFraction = 0.75;
          support::Rng rng = root.substream(index);
          return attack::evaluateBenchmark(original, benchmarkName,
                                           algorithms[index % algorithms.size()],
                                           lock::PairTable::fixed(), cellConfig, rng);
        });

    for (std::size_t b = 0; b < budgetGrid.size(); ++b) {
      const auto& assure = cells[b * algorithms.size() + 0];
      const auto& hra = cells[b * algorithms.size() + 1];
      const auto& era = cells[b * algorithms.size() + 2];
      table.addRow({std::to_string(budgetGrid[b]), support::formatDouble(assure.meanKpa, 2),
                    support::formatDouble(hra.meanKpa, 2),
                    support::formatDouble(hra.meanGlobalMetric, 1),
                    support::formatDouble(era.meanKpa, 2),
                    support::formatDouble(era.meanBitsUsed, 0)});
    }
    bench::emit(table, csv);
  });
}
