// Sec. 5.1 — "when it comes to ML-driven attacks, half measures are not
// effective.  Data-driven approaches can exploit even the slightest
// imbalance."
//
// The bench sweeps the key budget from 10 % to 100 % on an imbalanced design
// and reports KPA for ASSURE, HRA and ERA.  Expected shape: ASSURE stays
// highly vulnerable at every partial budget; HRA improves only gradually
// (residual imbalance remains exploitable until the budget suffices to
// balance); ERA is at random guess everywhere because it overruns the budget
// to reach balance.
#include "attack/pipeline.hpp"
#include "common.hpp"
#include "designs/registry.hpp"

int main(int argc, char** argv) {
  using namespace rtlock;
  return bench::runBench([&] {
    const support::CliArgs args(argc, argv,
                                {"seed", "csv", "samples", "relocks", "benchmark"});
    const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
    const bool csv = args.getBool("csv", false);
    const std::string benchmarkName = args.get("benchmark", "FIR");

    attack::EvaluationConfig config;
    config.testLocks = static_cast<int>(args.getInt("samples", 2));
    config.snapshot.relockRounds = static_cast<int>(args.getInt("relocks", 50));
    config.snapshot.automl.folds = 2;

    bench::banner("Key-budget sweep — the 'half measures' claim",
                  "Sisejkovic et al., DAC'22, Sec. 5.1 (lessons learned)",
                  "ASSURE/HRA exploitable at every partial budget; ERA ~50% throughout");

    const rtl::Module original = designs::makeBenchmark(benchmarkName);
    support::Table table{{"budget %", "ASSURE KPA%", "HRA KPA%", "HRA M^g", "ERA KPA%",
                          "ERA bits used"}};

    support::Rng rng{seed};
    for (const int budgetPercent : {10, 25, 50, 75, 90, 100}) {
      config.keyBudgetFraction = budgetPercent / 100.0;
      config.snapshot.relockBudgetFraction = 0.75;

      std::vector<std::string> row{std::to_string(budgetPercent)};
      const auto assure = attack::evaluateBenchmark(original, benchmarkName,
                                                    lock::Algorithm::AssureSerial,
                                                    lock::PairTable::fixed(), config, rng);
      row.push_back(support::formatDouble(assure.meanKpa, 2));
      const auto hra =
          attack::evaluateBenchmark(original, benchmarkName, lock::Algorithm::Hra,
                                    lock::PairTable::fixed(), config, rng);
      row.push_back(support::formatDouble(hra.meanKpa, 2));
      row.push_back(support::formatDouble(hra.meanGlobalMetric, 1));
      const auto era =
          attack::evaluateBenchmark(original, benchmarkName, lock::Algorithm::Era,
                                    lock::PairTable::fixed(), config, rng);
      row.push_back(support::formatDouble(era.meanKpa, 2));
      row.push_back(support::formatDouble(era.meanBitsUsed, 0));
      table.addRow(std::move(row));
    }
    bench::emit(table, csv);
  });
}
