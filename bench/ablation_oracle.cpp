// Sec. 5.1 open question — "Are the locking algorithms resilient to
// oracle-guided attacks?"
//
// Answer demonstrated here: no.  Learning resilience (balanced operation
// distribution) removes the *structural* key signal, but once the attacker
// owns a working oracle, per-bit corruption probing recovers most key bits
// for ASSURE, HRA and ERA alike — the schemes' threat model is strictly
// oracle-less.  Bits whose corruption does not reach an output within the
// probing window stay at a coin flip, which keeps KPA below 100 %.
#include "attack/oracle.hpp"
#include "common.hpp"
#include "core/algorithms.hpp"
#include "designs/networks.hpp"
#include "designs/registry.hpp"

int main(int argc, char** argv) {
  using namespace rtlock;
  return bench::runBench([&] {
    const support::CliArgs args(argc, argv, {"seed", "csv", "budget", "trials", "vectors"});
    const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
    const bool csv = args.getBool("csv", false);
    const double budgetFraction = args.getDouble("budget", 0.5);

    attack::OracleAttackConfig config;
    config.trials = static_cast<int>(args.getInt("trials", 6));
    config.vectors = static_cast<int>(args.getInt("vectors", 8));
    config.cyclesPerVector = 40;  // cover the deepest pipeline (32-tap FIR)

    bench::banner(
        "Oracle-guided attack vs. ML-resilient locking",
        "Sisejkovic et al., DAC'22, Sec. 5.1 (limitations & opportunities)",
        "corruption hill-climbing beats random on every scheme (ERA included) wherever "
        "the corruption gradient is smooth (arithmetic chains); avalanche-style designs "
        "(MD5/DES3) resist naive probing — full oracle analysis needs SAT-style attacks");

    support::Table table{
        {"benchmark", "algorithm", "key bits", "oracle KPA%", "SnapShot-context"}};

    support::Rng rng{seed};
    for (const auto* name : {"N_ADD_128", "FIR", "MD5", "DES3", "I2C_SL"}) {
      const rtl::Module original = std::string{name} == "N_ADD_128"
                                       ? designs::makePlusNetwork(128)
                                       : designs::makeBenchmark(name);
      for (const auto algorithm :
           {lock::Algorithm::AssureSerial, lock::Algorithm::Hra, lock::Algorithm::Era}) {
        rtl::Module locked = original.clone();
        lock::LockEngine engine{locked, lock::PairTable::fixed()};
        const int budget = std::max(
            1, static_cast<int>(budgetFraction *
                                static_cast<double>(engine.initialLockableOps())));
        lock::lockWithAlgorithm(engine, algorithm, budget, rng);

        const auto result =
            attack::oracleGuidedAttack(original, locked, engine.records(), config, rng);
        table.addRow({name, std::string{lock::algorithmName(algorithm)},
                      std::to_string(result.keyBits), support::formatDouble(result.kpa, 2),
                      algorithm == lock::Algorithm::Era ? "SnapShot fails (~50%)"
                                                        : "SnapShot succeeds"});
      }
    }
    bench::emit(table, csv);
  });
}
