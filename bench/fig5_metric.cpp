// Fig. 5 — Security-metric search space and evolution (Sec. 4.4).
//
// (a) The M^g_sec surface over the ODT magnitude grid of the paper's example
//     design: |ODT[(+,-)]| = 25, |ODT[(<<,>>)]| = 10.
// (b) Metric evolution per consumed key bit for ERA, HRA and the Greedy
//     variant on that design.  Expected shape: ERA jumps along the surface
//     edges (few large steps), Greedy rides the steepest path and reaches 100
//     with the fewest bits (35), HRA needs more bits because of its random
//     pair-mode steps but stays monotone.
#include <iostream>

#include "common.hpp"
#include "core/algorithms.hpp"
#include "core/metric.hpp"
#include "designs/networks.hpp"

namespace {

using namespace rtlock;

rtl::Module fig5Design() {
  return designs::makeOperationNetwork("fig5",
                                       {{rtl::OpKind::Add, 25}, {rtl::OpKind::Shl, 10}});
}

void surface(bool csv, int step) {
  std::cout << "--- Fig. 5a: M^g_sec surface over (|ODT[(+,-)]|, |ODT[(<<,>>)]|) ---\n";
  const std::vector<int> initial{25, 10};
  std::vector<std::string> header{"odt_add_sub \\ odt_shl_shr"};
  for (int y = 10; y >= 0; y -= step) header.push_back(std::to_string(y));
  support::Table table{header};
  for (int x = 25; x >= 0; x -= step) {
    std::vector<std::string> row{std::to_string(x)};
    for (int y = 10; y >= 0; y -= step) {
      const std::vector<int> current{x, y};
      row.push_back(support::formatDouble(lock::globalSecurityMetric(initial, current), 1));
    }
    table.addRow(std::move(row));
  }
  rtlock::bench::emit(table, csv);
  std::cout << '\n';
}

void evolution(bool csv, std::uint64_t seed, int budget, int threads) {
  std::cout << "--- Fig. 5b: metric evolution per key bit ---\n";
  struct Run {
    lock::Algorithm algorithm;
    lock::AlgorithmReport report;
  };
  // Every algorithm cell restarts from a fresh rng{seed} (as the serial
  // version always did), so the sharded grid stays bit-identical.
  const std::vector<lock::Algorithm> algorithms{
      lock::Algorithm::Era, lock::Algorithm::Hra, lock::Algorithm::Greedy};
  support::TaskPool pool{support::threadsForTasks(threads, algorithms.size())};
  std::vector<Run> runs = pool.map(algorithms.size(), [&](std::size_t index) {
    rtl::Module design = fig5Design();
    lock::LockEngine engine{design, lock::PairTable::fixed()};
    support::Rng rng{seed};
    return Run{algorithms[index],
               lock::lockWithAlgorithm(engine, algorithms[index], budget, rng)};
  });

  support::Table table{{"key bits", "ERA", "HRA", "Greedy"}};
  int maxBits = 0;
  for (const auto& run : runs) {
    if (!run.report.metricTrace.empty()) {
      maxBits = std::max(maxBits, run.report.metricTrace.back().first);
    }
  }
  const auto metricAt = [](const lock::AlgorithmReport& report, int bits) {
    double metric = 0.0;
    for (const auto& [usedBits, value] : report.metricTrace) {
      if (usedBits > bits) break;
      metric = value;
    }
    return metric;
  };
  for (int bits = 0; bits <= maxBits; ++bits) {
    table.addRow({std::to_string(bits), support::formatDouble(metricAt(runs[0].report, bits), 2),
                  support::formatDouble(metricAt(runs[1].report, bits), 2),
                  support::formatDouble(metricAt(runs[2].report, bits), 2)});
  }
  rtlock::bench::emit(table, csv);

  std::cout << '\n';
  support::Table summary{{"algorithm", "bits used", "bits to M=100", "final M^g", "final M^r"}};
  for (const auto& run : runs) {
    int bitsToSecure = -1;
    for (const auto& [bits, metric] : run.report.metricTrace) {
      if (metric >= 100.0) {
        bitsToSecure = bits;
        break;
      }
    }
    summary.addRow({std::string{lock::algorithmName(run.algorithm)},
                    std::to_string(run.report.bitsUsed),
                    bitsToSecure < 0 ? "not reached" : std::to_string(bitsToSecure),
                    support::formatDouble(run.report.finalGlobalMetric, 2),
                    support::formatDouble(run.report.finalRestrictedMetric, 2)});
  }
  rtlock::bench::emit(summary, csv);
}

}  // namespace

int main(int argc, char** argv) {
  return rtlock::bench::runBench([&] {
    const support::CliArgs args(argc, argv, {"seed", "csv", "grid-step", "budget", "threads"});
    const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
    const bool csv = args.getBool("csv", false);
    const int step = static_cast<int>(args.getInt("grid-step", 5));
    const int budget = static_cast<int>(args.getInt("budget", 60));
    const int threads = rtlock::bench::requestedThreads(args);

    rtlock::bench::banner("Fig. 5 — metric surface and evolution",
                          "Sisejkovic et al., DAC'22, Fig. 5a/5b",
                          "monotone surface; Greedy secures at 35 bits, HRA later, ERA in "
                          "two coarse jumps");
    surface(csv, step);
    evolution(csv, seed, budget, threads);
  });
}
