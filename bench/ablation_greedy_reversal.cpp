// Sec. 4.4 — "a greedy approach has a negative consequence: reversibility.
// An attacker can reverse the locking procedure alongside the steepest
// decreasing direction.  Therefore, including random locking decisions within
// HRA (variable P) thwarts reversibility."
//
// Operationalization: the locking decision sequence (which pair is locked at
// each step) is replayed by an attacker who knows the algorithm and the
// initial operation distribution.  For Greedy the sequence is a deterministic
// function of the ODT, so the replay agrees ~100 %; HRA's coin-flip steps cut
// the agreement roughly in half and also randomize the following state.
#include "common.hpp"
#include "core/algorithms.hpp"
#include "core/metric.hpp"
#include "designs/registry.hpp"

namespace {

using namespace rtlock;

/// Runs the algorithm and logs the pair index chosen at every step.
std::vector<int> decisionSequence(lock::Algorithm algorithm, const rtl::Module& original,
                                  int budget, support::Rng& rng) {
  rtl::Module module = original.clone();
  lock::LockEngine engine{module, lock::PairTable::fixed()};
  std::vector<int> sequence;
  const std::size_t before = engine.records().size();
  lock::lockWithAlgorithm(engine, algorithm, budget, rng);
  for (std::size_t i = before; i < engine.records().size(); ++i) {
    sequence.push_back(lock::PairTable::fixed().pairIndexOf(engine.records()[i].realOp));
  }
  return sequence;
}

/// Attacker's replay: simulate the *greedy* decision rule (steepest M^g
/// ascent on the ODT) from the known initial distribution and compare with
/// the observed sequence.
double replayAgreement(const std::vector<int>& observed, const rtl::Module& original) {
  rtl::Module probe = original.clone();
  lock::LockEngine engine{probe, lock::PairTable::fixed()};
  const std::vector<int> initial = engine.initialMagnitudes();
  std::vector<int> magnitudes = initial;

  int agree = 0;
  for (const int actual : observed) {
    // Greedy rule: reduce a pair of maximal current magnitude (steepest M^g
    // ascent); the attacker predicts the argmax set.
    int maxMagnitude = 0;
    for (const int magnitude : magnitudes) maxMagnitude = std::max(maxMagnitude, magnitude);
    if (actual >= 0 && magnitudes[static_cast<std::size_t>(actual)] == maxMagnitude) {
      ++agree;
    }
    // Advance the attacker's model with the *observed* decision.
    if (actual >= 0 && magnitudes[static_cast<std::size_t>(actual)] > 0) {
      --magnitudes[static_cast<std::size_t>(actual)];
    }
  }
  return observed.empty() ? 0.0 : static_cast<double>(agree) / observed.size();
}

}  // namespace

int main(int argc, char** argv) {
  return rtlock::bench::runBench([&] {
    const support::CliArgs args(argc, argv, {"seed", "csv", "budget", "trials"});
    const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
    const bool csv = args.getBool("csv", false);
    const int trials = static_cast<int>(args.getInt("trials", 5));

    rtlock::bench::banner(
        "Greedy reversibility vs. HRA randomization",
        "Sisejkovic et al., DAC'22, Sec. 4.4",
        "greedy decision sequence ~100% predictable; HRA agreement far lower; "
        "greedy runs are seed-independent, HRA runs diverge across seeds");

    support::Table table{{"benchmark", "algorithm", "steps", "replay agreement %",
                          "cross-seed sequence equality"}};

    for (const auto* name : {"FIR", "MD5", "SHA256"}) {
      const rtl::Module original = designs::makeBenchmark(name);
      rtl::Module probeCopy = original.clone();
      lock::LockEngine probe{probeCopy, lock::PairTable::fixed()};
      const int budget = probe.initialLockableOps() / 2;

      for (const auto algorithm : {lock::Algorithm::Greedy, lock::Algorithm::Hra}) {
        double agreement = 0.0;
        int equalSequences = 0;
        std::vector<int> reference;
        std::size_t steps = 0;
        for (int trial = 0; trial < trials; ++trial) {
          support::Rng rng{seed + static_cast<std::uint64_t>(trial)};
          const auto sequence = decisionSequence(algorithm, original, budget, rng);
          steps = sequence.size();
          agreement += replayAgreement(sequence, original);
          if (trial == 0) {
            reference = sequence;
          } else if (sequence == reference) {
            ++equalSequences;
          }
        }
        table.addRow({name, std::string{lock::algorithmName(algorithm)},
                      std::to_string(steps),
                      support::formatDouble(100.0 * agreement / trials, 1),
                      std::to_string(equalSequences) + "/" + std::to_string(trials - 1)});
      }
    }
    rtlock::bench::emit(table, csv);
  });
}
