// Locality-encoding ablation — does a richer locality help SnapShot?
//
// The paper encodes a locality as the operation pair [C1, C2].  The extended
// encoding adds branch depths, the parent construct and a width bucket.
//
// Finding (see EXPERIMENTS.md): the extended encoding measurably re-opens a
// channel against ERA (e.g. MD5 ~43 % -> ~62 % KPA).  Def. 1 balances
// operation-type *counts*, but when an already-locked pair is relocked the
// real branch is a nested mux while the fresh dummy is a shallow clone — a
// key-correlated *depth* asymmetry that count balancing cannot remove.  This
// extends the paper's own warning: "as long as the structural change is
// related to key values, it is possible to use ML to guess the keys."
#include "attack/pipeline.hpp"
#include "common.hpp"
#include "designs/registry.hpp"

int main(int argc, char** argv) {
  using namespace rtlock;
  return bench::runBench([&] {
    const support::CliArgs args(argc, argv, {"seed", "csv", "samples", "relocks", "threads"});
    const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
    const bool csv = args.getBool("csv", false);
    const int threads = bench::requestedThreads(args);

    bench::banner("Locality feature-set ablation (basic [C1,C2] vs extended)",
                  "extension of Sisejkovic et al., DAC'22, Sec. 5 (SnapShot adaptation)",
                  "extended features lift KPA against ERA by ~10-20 points: nested-mux "
                  "depth asymmetry is key-correlated residue that count balancing misses");

    support::Table table{{"benchmark", "algorithm", "KPA% basic", "KPA% extended"}};

    support::Rng rng{seed};
    for (const auto* name : {"FIR", "MD5", "SHA256"}) {
      const rtl::Module original = designs::makeBenchmark(name);
      for (const auto algorithm : {lock::Algorithm::AssureSerial, lock::Algorithm::Era}) {
        attack::EvaluationConfig config;
        config.testLocks = static_cast<int>(args.getInt("samples", 2));
        config.snapshot.relockRounds = static_cast<int>(args.getInt("relocks", 60));
        config.snapshot.automl.folds = 2;
        // The grid here shares one rng stream serially (cells are compared
        // against each other), so the sample loop is the parallelism level.
        config.threads = threads;

        config.snapshot.locality.extendedFeatures = false;
        const auto basic = attack::evaluateBenchmark(original, name, algorithm,
                                                     lock::PairTable::fixed(), config, rng);
        config.snapshot.locality.extendedFeatures = true;
        const auto extended = attack::evaluateBenchmark(original, name, algorithm,
                                                        lock::PairTable::fixed(), config, rng);
        table.addRow({name, std::string{lock::algorithmName(algorithm)},
                      support::formatDouble(basic.meanKpa, 2),
                      support::formatDouble(extended.meanKpa, 2)});
      }
    }
    bench::emit(table, csv);
  });
}
