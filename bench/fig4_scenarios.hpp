// The Fig. 4 relocking thought experiment (Sec. 3), shared between the
// figure bench (fig4_observations.cpp) and the baseline runner so the two
// cannot drift apart: lock a pure '+' network, relock it `rounds` times with
// known keys, and accumulate P(key = 1 | locality) observations.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <map>
#include <utility>

#include "attack/locality.hpp"
#include "core/algorithms.hpp"
#include "designs/networks.hpp"

namespace rtlock::bench {

enum class Fig4Scenario { SerialSerial, RandomRandom, SerialDisjoint };

struct Fig4Observation {
  int ones = 0;
  int total = 0;
  [[nodiscard]] double pOne() const {
    return total == 0 ? 0.5 : static_cast<double>(ones) / total;
  }
  friend bool operator==(const Fig4Observation&, const Fig4Observation&) = default;
};

using Fig4Observations = std::map<std::pair<int, int>, Fig4Observation>;

/// Runs one scenario: test-set lock + `rounds` relocking rounds, keyed by
/// the (C1, C2) locality codes an attacker would extract.
inline Fig4Observations observeFig4(Fig4Scenario scenario, int networkSize, int testBits,
                                    int rounds, support::Rng& rng) {
  rtl::Module network = designs::makePlusNetwork(networkSize);
  lock::LockEngine engine{network, lock::PairTable::fixed()};

  // Test-set locking (the design under attack).
  if (scenario == Fig4Scenario::RandomRandom) {
    lock::assureRandomLock(engine, testBits, rng);
  } else {
    lock::assureSerialLock(engine, testBits, rng);
  }

  Fig4Observations observations;
  for (int round = 0; round < rounds; ++round) {
    const std::size_t checkpoint = engine.checkpoint();
    const int keyStart = network.keyWidth();

    switch (scenario) {
      case Fig4Scenario::SerialSerial:
        // Deterministic order: relocking extends the same leading operations
        // (both branches of each test mux), yielding balanced observations.
        lock::assureSerialLock(engine, testBits, rng);
        break;
      case Fig4Scenario::RandomRandom:
        lock::assureRandomLock(engine, testBits, rng);
        break;
      case Fig4Scenario::SerialDisjoint:
        // Training touches only operations the serial test lock skipped:
        // pool positions testBits.. of the '+' pool are still unwrapped.
        for (int position = testBits; position < networkSize; ++position) {
          engine.lockOpAt(rtl::OpKind::Add, static_cast<std::size_t>(position), rng.coin());
        }
        break;
    }

    std::map<int, bool> labels;
    for (std::size_t i = checkpoint; i < engine.records().size(); ++i) {
      labels[engine.records()[i].keyIndex] = engine.records()[i].keyValue;
    }
    for (const auto& locality : attack::extractLocalities(network, {}, keyStart)) {
      auto& entry = observations[{static_cast<int>(locality.features[0]),
                                  static_cast<int>(locality.features[1])}];
      ++entry.total;
      if (labels.at(locality.keyIndex)) ++entry.ones;
    }
    engine.undoTo(checkpoint);
  }
  return observations;
}

/// Headline number: max |P(key=1 | locality) - 0.5| over observed localities.
/// Resilient configurations sit near 0, fully leaky ones at 0.5.
inline double fig4WorstBias(const Fig4Observations& observations) {
  double worstBias = 0.0;
  for (const auto& [locality, observation] : observations) {
    worstBias = std::max(worstBias, std::abs(observation.pOne() - 0.5));
  }
  return worstBias;
}

}  // namespace rtlock::bench
