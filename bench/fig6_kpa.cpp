// Fig. 6 — the paper's headline result: SnapShot-RTL KPA per benchmark and
// locking algorithm (6a) and the average KPA per algorithm (6b).
//
// Paper numbers (their testbed): ASSURE 74.78 %, HRA 74.26 %, ERA 47.92 %
// average KPA; ASSURE/HRA well above the 50 % random guess on imbalanced
// designs (N_2046 near 100 %), ERA at/below random everywhere.  We reproduce
// the shape: ASSURE ≈ HRA >> ERA ≈ 50.
//
// Defaults are sized for a quick run; use --samples=10 --relocks=1000 for the
// full paper setup.
#include <iostream>

#include "attack/pipeline.hpp"
#include "common.hpp"
#include "designs/registry.hpp"

namespace {

using namespace rtlock;

}  // namespace

int main(int argc, char** argv) {
  return rtlock::bench::runBench([&] {
    const support::CliArgs args(argc, argv, {"seed", "csv", "samples", "relocks", "budget",
                                             "benchmarks", "extended", "threads"});
    const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
    const bool csv = args.getBool("csv", false);
    const int threads = rtlock::bench::requestedThreads(args);

    attack::EvaluationConfig config;
    config.testLocks = static_cast<int>(args.getInt("samples", 3));
    config.keyBudgetFraction = args.getDouble("budget", 0.75);
    config.snapshot.relockRounds = static_cast<int>(args.getInt("relocks", 60));
    config.snapshot.relockBudgetFraction = config.keyBudgetFraction;
    config.snapshot.locality.extendedFeatures = args.getBool("extended", false);
    config.snapshot.automl.folds = 3;
    // The grid is the outer parallelism level; keep the per-cell sample loop
    // on the serial reference path to avoid oversubscription.
    config.threads = 1;

    std::vector<std::string> benchmarks = designs::benchmarkNames();
    if (args.has("benchmarks")) {
      benchmarks = support::split(args.get("benchmarks", ""), ',');
    }

    rtlock::bench::banner(
        "Fig. 6 — SnapShot-RTL attack vs. locking algorithms",
        "Sisejkovic et al., DAC'22, Fig. 6a (per benchmark) and 6b (average)",
        "paper averages: ASSURE 74.78, HRA 74.26, ERA 47.92 KPA%; ERA ~= 50 everywhere, "
        "N_2046 ~= 100 for ASSURE");

    const std::vector<lock::Algorithm> algorithms{
        lock::Algorithm::AssureSerial, lock::Algorithm::Hra, lock::Algorithm::Era};

    support::Table perBenchmark{{"benchmark", "ops", "ASSURE KPA%", "HRA KPA%", "ERA KPA%",
                                 "ERA bits (budget)"}};
    std::vector<double> sums(algorithms.size(), 0.0);

    // Build each benchmark once; tasks clone from the shared const module.
    std::vector<rtl::Module> originals;
    originals.reserve(benchmarks.size());
    for (const auto& name : benchmarks) originals.push_back(designs::makeBenchmark(name));

    // One task per (benchmark, algorithm) cell; cell i draws only from
    // substream(i) of the master seed, so the grid is thread-count
    // invariant.  Results come back in submission order.
    const support::Rng root{seed};
    support::TaskPool pool{
        support::threadsForTasks(threads, benchmarks.size() * algorithms.size())};
    const auto cells = pool.map(
        benchmarks.size() * algorithms.size(), [&](std::size_t index) {
          const std::size_t b = index / algorithms.size();
          const lock::Algorithm algorithm = algorithms[index % algorithms.size()];
          support::Rng cellRng = root.substream(index);
          return attack::evaluateBenchmark(originals[b], benchmarks[b], algorithm,
                                           lock::PairTable::fixed(), config, cellRng);
        });

    for (std::size_t b = 0; b < benchmarks.size(); ++b) {
      const std::string& name = benchmarks[b];
      std::vector<std::string> row{name};
      {
        rtl::Module probe = originals[b].clone();
        lock::LockEngine probeEngine{probe, lock::PairTable::fixed()};
        row.push_back(std::to_string(probeEngine.initialLockableOps()));
      }

      std::string eraBits;
      for (std::size_t a = 0; a < algorithms.size(); ++a) {
        const auto& result = cells[b * algorithms.size() + a];
        sums[a] += result.meanKpa;
        row.push_back(support::formatDouble(result.meanKpa, 2));
        if (algorithms[a] == lock::Algorithm::Era) {
          eraBits = support::formatDouble(result.meanBitsUsed, 0) + " (" +
                    support::formatDouble(result.meanKeyBits, 0) + " attacked)";
        }
        std::cerr << "[fig6] " << name << " / " << lock::algorithmName(algorithms[a])
                  << ": KPA " << support::formatDouble(result.meanKpa, 2) << "% (min "
                  << support::formatDouble(result.minKpa, 2) << ", max "
                  << support::formatDouble(result.maxKpa, 2) << ")\n";
      }
      row.push_back(eraBits);
      perBenchmark.addRow(std::move(row));
    }

    std::cout << "--- Fig. 6a: KPA per benchmark ---\n";
    rtlock::bench::emit(perBenchmark, csv);

    std::cout << "\n--- Fig. 6b: average KPA per algorithm ---\n";
    support::Table average{{"algorithm", "mean KPA%", "paper KPA%"}};
    const char* paperValues[] = {"74.78", "74.26", "47.92"};
    for (std::size_t a = 0; a < algorithms.size(); ++a) {
      average.addRow({std::string{lock::algorithmName(algorithms[a])},
                      support::formatDouble(sums[a] / static_cast<double>(benchmarks.size()), 2),
                      paperValues[a]});
    }
    rtlock::bench::emit(average, csv);
    std::cout << "\nrandom-guess baseline: 50.00 KPA%\n";
  });
}
