// Shared plumbing for the figure-reproduction benches.
//
// Every bench accepts:
//   --seed=N       master RNG seed (default 1)
//   --csv          emit CSV instead of an aligned table
//   --samples=N    locked samples per configuration (paper: 10)
//   --relocks=N    training relock rounds per sample (paper: 1000)
// plus bench-specific flags documented in each main().
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "support/cli.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace rtlock::bench {

/// Renders a table according to the --csv flag.
inline void emit(const support::Table& table, bool csv) {
  if (csv) {
    table.renderCsv(std::cout);
  } else {
    table.renderText(std::cout);
  }
}

/// Prints the standard bench banner.
inline void banner(const std::string& title, const std::string& paperRef,
                   const std::string& expectation) {
  std::cout << "== " << title << " ==\n"
            << "reproduces: " << paperRef << "\n"
            << "expected shape: " << expectation << "\n\n";
}

/// Wraps main-body execution with uniform error reporting.
template <typename Body>
int runBench(Body&& body) {
  try {
    body();
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "bench failed: " << error.what() << '\n';
    return 1;
  }
}

}  // namespace rtlock::bench
