// Shared plumbing for the figure-reproduction benches.
//
// Every bench accepts:
//   --seed=N       master RNG seed (default 1)
//   --csv          emit CSV instead of an aligned table
//   --samples=N    locked samples per configuration (paper: 10)
//   --relocks=N    training relock rounds per sample (paper: 1000)
// Benches routed through the experiment engine (fig4/5/6, run_baseline, the
// evaluateBenchmark-based ablations) additionally accept
//   --threads=N    experiment-engine workers (default: RTLOCK_THREADS env,
//                  else hardware concurrency; 1 = serial reference path)
// and their results are bit-identical at every thread count (see
// support/task_pool.hpp).  Other flags are documented in each main().
#pragma once

#include <cerrno>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "support/cli.hpp"
#include "support/diagnostics.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "support/task_pool.hpp"

namespace rtlock::bench {

/// Requested worker count for a bench: --threads flag, then RTLOCK_THREADS,
/// then hardware concurrency.  Shared with the rtlock CLI through
/// support::requestedThreads so both front ends resolve thread counts
/// identically.
inline int requestedThreads(const support::CliArgs& args) {
  return support::requestedThreads(args);
}

/// Renders a table according to the --csv flag.
inline void emit(const support::Table& table, bool csv) {
  if (csv) {
    table.renderCsv(std::cout);
  } else {
    table.renderText(std::cout);
  }
}

/// Prints the standard bench banner.
inline void banner(const std::string& title, const std::string& paperRef,
                   const std::string& expectation) {
  std::cout << "== " << title << " ==\n"
            << "reproduces: " << paperRef << "\n"
            << "expected shape: " << expectation << "\n\n";
}

/// Wraps main-body execution with uniform error reporting.
template <typename Body>
int runBench(Body&& body) {
  try {
    body();
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "bench failed: " << error.what() << '\n';
    return 1;
  }
}

}  // namespace rtlock::bench
