// Shared plumbing for the figure-reproduction benches.
//
// Every bench accepts:
//   --seed=N       master RNG seed (default 1)
//   --csv          emit CSV instead of an aligned table
//   --samples=N    locked samples per configuration (paper: 10)
//   --relocks=N    training relock rounds per sample (paper: 1000)
// Benches routed through the experiment engine (fig4/5/6, run_baseline, the
// evaluateBenchmark-based ablations) additionally accept
//   --threads=N    experiment-engine workers (default: RTLOCK_THREADS env,
//                  else hardware concurrency; 1 = serial reference path)
// and their results are bit-identical at every thread count (see
// support/task_pool.hpp).  Other flags are documented in each main().
#pragma once

#include <cerrno>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "support/cli.hpp"
#include "support/diagnostics.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "support/task_pool.hpp"

namespace rtlock::bench {

/// Requested worker count for a bench: the --threads flag wins, then the
/// RTLOCK_THREADS environment override, then 0 ("hardware concurrency").
/// Feed the result to TaskPool / EvaluationConfig::threads, which resolve 0
/// via support::resolveThreadCount.  A malformed RTLOCK_THREADS fails loudly
/// (same policy as CliArgs: typos must not silently run a default config).
inline int requestedThreads(const support::CliArgs& args) {
  if (args.has("threads")) return static_cast<int>(args.getInt("threads", 0));
  if (const char* env = std::getenv("RTLOCK_THREADS")) {
    char* end = nullptr;
    errno = 0;
    const long value = std::strtol(env, &end, 10);
    constexpr long kMaxThreads = 4096;  // sanity bound, not a real target
    if (end == env || *end != '\0' || errno == ERANGE || value < 0 || value > kMaxThreads) {
      throw support::Error("RTLOCK_THREADS expects an integer in [0, 4096], got \"" +
                           std::string{env} + "\"");
    }
    return static_cast<int>(value);
  }
  return 0;
}

/// Renders a table according to the --csv flag.
inline void emit(const support::Table& table, bool csv) {
  if (csv) {
    table.renderCsv(std::cout);
  } else {
    table.renderText(std::cout);
  }
}

/// Prints the standard bench banner.
inline void banner(const std::string& title, const std::string& paperRef,
                   const std::string& expectation) {
  std::cout << "== " << title << " ==\n"
            << "reproduces: " << paperRef << "\n"
            << "expected shape: " << expectation << "\n\n";
}

/// Wraps main-body execution with uniform error reporting.
template <typename Body>
int runBench(Body&& body) {
  try {
    body();
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "bench failed: " << error.what() << '\n';
    return 1;
  }
}

}  // namespace rtlock::bench
